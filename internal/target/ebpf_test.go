package target

import (
	"errors"
	"strings"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

func TestEBPFImplementsReject(t *testing.T) {
	eb := NewEBPF(DefaultEBPFErrata())
	loadRouter(t, eb)
	res := eb.Process(badVersionFrame(), 0, true)
	if !res.Dropped() {
		t.Fatal("ebpf implements the reject state; malformed packets must drop")
	}
	if res.Trace.Verdict != dataplane.VerdictReject {
		t.Fatalf("verdict = %v", res.Trace.Verdict)
	}
	res = eb.Process(goodFrame(), 0, false)
	if res.Dropped() || res.Outputs[0].Port != 1 {
		t.Fatalf("good frame: %+v", res)
	}
}

// defaultRouteEntry is a /0 route: every destination the longer
// prefixes miss falls through to it.
func defaultRouteEntry(port uint64) dataplane.Entry {
	return dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0, 32), PrefixLen: 0}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(port, 9)},
	}
}

// offRouteFrame is covered only by the /0 default route, not the 10/8
// route loadRouter installs.
func offRouteFrame() []byte {
	return packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{172, 16, 3, 9}, 40000, 53, make([]byte, 26))
}

func TestEBPFLPMZeroPrefixMiss(t *testing.T) {
	shipped := NewEBPF(DefaultEBPFErrata())
	loadRouter(t, shipped)
	if err := shipped.InstallEntry(defaultRouteEntry(2)); err != nil {
		t.Fatalf("the shipped driver accepts the /0 install: %v", err)
	}
	if res := shipped.Process(offRouteFrame(), 0, false); !res.Dropped() {
		t.Fatal("shipped lpm-trie driver must never match the /0 default route")
	}
	// Longer prefixes still match.
	if res := shipped.Process(goodFrame(), 0, false); res.Dropped() || res.Outputs[0].Port != 1 {
		t.Fatalf("10/8 route must still match: %+v", res)
	}

	fixed := NewEBPF(FixedEBPFErrata())
	loadRouter(t, fixed)
	if err := fixed.InstallEntry(defaultRouteEntry(2)); err != nil {
		t.Fatal(err)
	}
	if res := fixed.Process(offRouteFrame(), 0, false); res.Dropped() || res.Outputs[0].Port != 2 {
		t.Fatalf("fixed driver must forward via the default route: %+v", res)
	}

	// The defect is past the update call's validation: a malformed /0
	// entry still errors on the shipped flow, like every other backend.
	bad := defaultRouteEntry(2)
	bad.Action = "no_such_action"
	if err := shipped.InstallEntry(bad); err == nil {
		t.Fatal("shipped driver must still validate suppressed /0 installs")
	}
	badArgs := defaultRouteEntry(2)
	badArgs.Args = nil
	if err := shipped.InstallEntry(badArgs); err == nil {
		t.Fatal("shipped driver must reject a /0 install with missing action args")
	}
}

// bigTableEntry is the i-th entry of the BigExactTable fixture.
func bigTableEntry(i int) dataplane.Entry {
	return dataplane.Entry{
		Table:  "big",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(i), 32)}},
		Action: "fwd",
		Args:   []bitfield.Value{bitfield.New(1, 9)},
	}
}

// bigTableFrame is the 4-byte k_t frame carrying dst=i.
func bigTableFrame(i int) []byte {
	return []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
}

// TestEBPFMemlockClipsCapacity pins the per-map-type pricing: a hash
// map entry for a 4-byte key costs 72 bytes (aligned key + value +
// bucket overhead), so a 7200-byte memlock budget holds 100 of the
// 4096 declared entries, and the repaired flow fails the 101st install
// with the same CapacityError the other backends produce.
func TestEBPFMemlockClipsCapacity(t *testing.T) {
	e := FixedEBPFErrata()
	e.MemlockBytes = 7200
	eb := NewEBPF(e)
	if err := eb.Load(mustProg(t, p4test.BigExactTable)); err != nil {
		t.Fatal(err)
	}
	installed := 0
	var capErr *dataplane.CapacityError
	for i := 0; i < 4096; i++ {
		if err := eb.InstallEntry(bigTableEntry(i)); err != nil {
			if !errors.As(err, &capErr) {
				t.Fatalf("entry %d: %v", i, err)
			}
			break
		}
		installed++
	}
	if installed != 100 {
		t.Fatalf("memlock capacity = %d, want 100 (7200 bytes / 72 bytes per hash entry)", installed)
	}
	if capErr == nil {
		t.Fatal("expected a CapacityError at the memlock limit")
	}
}

// TestEBPFMapFullSilentUpdate: the shipped hash-map driver reports
// success on a full map without inserting — the control plane only
// finds out by probing the data plane.
func TestEBPFMapFullSilentUpdate(t *testing.T) {
	e := DefaultEBPFErrata()
	e.MemlockBytes = 7200 // 100-entry capacity, as pinned above
	eb := NewEBPF(e)
	if err := eb.Load(mustProg(t, p4test.BigExactTable)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := eb.InstallEntry(bigTableEntry(i)); err != nil {
			t.Fatalf("shipped driver must report success on entry %d: %v", i, err)
		}
	}
	// Entries below capacity hit (fwd sets port 1); the silently
	// discarded ones miss and fall through with egress unset.
	if res := eb.Process(bigTableFrame(50), 0, false); res.Dropped() || res.Outputs[0].Port != 1 {
		t.Fatalf("entry 50 is installed; its flow must hit: %+v", res)
	}
	if res := eb.Process(bigTableFrame(110), 0, false); !res.Dropped() && res.Outputs[0].Port == 1 {
		t.Fatal("entry 110 was silently discarded; its flow must miss")
	}
	if st := eb.Status(); st["table.big.miss"] == 0 {
		t.Fatalf("the silently discarded flow must count as a table miss: %v", st)
	}
}

// threeTableProgram chains three dependent tables — three tail calls.
const threeTableProgram = `
header k_t { bit<32> a; bit<32> b; bit<32> c; } struct hs { k_t k; }
parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.k); transition accept; } }
control I(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table t1 { key = { hdr.k.a: exact; } actions = { fwd; NoAction; } size = 16; }
  table t2 { key = { hdr.k.b: exact; } actions = { fwd; NoAction; } size = 16; }
  table t3 { key = { hdr.k.c: exact; } actions = { fwd; NoAction; } size = 16; }
  apply { t1.apply(); t2.apply(); t3.apply(); }
}
control D(packet_out p, in hs hdr) { apply { p.emit(hdr.k); } }
S(P(), I(), D()) main;`

func TestEBPFTailCallChainLimit(t *testing.T) {
	e := DefaultEBPFErrata()
	e.TailCallLimit = 2
	err := NewEBPF(e).Load(mustProg(t, threeTableProgram))
	if err == nil {
		t.Fatal("a 3-table chain must not load under a 2-deep tail-call limit")
	}
	if !strings.Contains(err.Error(), "tail-call") {
		t.Fatalf("error should name the tail-call limit: %v", err)
	}
	e.TailCallLimit = 3
	if err := NewEBPF(e).Load(mustProg(t, threeTableProgram)); err != nil {
		t.Fatalf("3 tail calls must fit a 3-deep chain: %v", err)
	}
}

// aclEntry builds a firewall ACL entry whose dst mask is the top
// maskBits bits — distinct maskBits values are distinct mask tuples.
func aclEntry(i, maskBits int) dataplane.Entry {
	anyAddr := bitfield.New(0, 32)
	anyPort := bitfield.New(0, 16)
	return dataplane.Entry{
		Table: "acl", Action: "allow", Priority: 1,
		Keys: []dataplane.KeyValue{
			{Value: anyAddr, Mask: anyAddr},
			{Value: bitfield.New(uint64(i)<<(32-maskBits), 32), Mask: prefixMaskBits(32, maskBits)},
			{Value: anyPort, Mask: anyPort},
		},
	}
}

func prefixMaskBits(w, n int) bitfield.Value {
	return bitfield.Mask(w).Shl(w - n).WithWidth(w)
}

// TestEBPFMaskSetLimit: the ternary emulation is a mask-set scan with
// one unrolled section per distinct mask tuple; an install introducing
// a mask beyond the bound is rejected, while entries reusing installed
// masks keep landing.
func TestEBPFMaskSetLimit(t *testing.T) {
	e := DefaultEBPFErrata()
	e.MaxMasks = 2
	eb := NewEBPF(e)
	if err := eb.Load(mustProg(t, p4test.Firewall)); err != nil {
		t.Fatal(err)
	}
	if err := eb.InstallEntry(aclEntry(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := eb.InstallEntry(aclEntry(2, 16)); err != nil {
		t.Fatal(err)
	}
	var maskErr *dataplane.MaskSetError
	if err := eb.InstallEntry(aclEntry(3, 24)); !errors.As(err, &maskErr) {
		t.Fatalf("third distinct mask must exceed the 2-mask set: %v", err)
	}
	if err := eb.InstallEntry(aclEntry(4, 8)); err != nil {
		t.Fatalf("an installed mask tuple must keep accepting entries: %v", err)
	}
	if got := eb.TernaryGroups("acl"); got != 2 {
		t.Fatalf("mask groups = %d, want 2", got)
	}
}

// TestEBPFLatencyFollowsProgramLength: unlike the fixed-delay hardware
// pipelines, the software offload costs what it executes — a bigger
// program is slower, and every distinct installed ACL mask adds one
// scan section.
func TestEBPFLatencyFollowsProgramLength(t *testing.T) {
	load := func(src string) Target {
		eb := NewEBPF(DefaultEBPFErrata())
		if err := eb.Load(mustProg(t, src)); err != nil {
			t.Fatal(err)
		}
		return eb
	}
	lat := func(tgt Target, frame []byte) int64 {
		return tgt.Process(frame, 0, false).Latency.Nanoseconds()
	}
	small := load(p4test.Reflector)
	big := load(p4test.Firewall)
	frame := goodFrame()
	if ls, lb := lat(small, frame), lat(big, frame); ls >= lb {
		t.Fatalf("reflector latency %dns !< firewall latency %dns", ls, lb)
	}

	fw := load(p4test.Firewall)
	before := lat(fw, frame)
	for i := 1; i <= 8; i++ {
		if err := fw.InstallEntry(aclEntry(i, i)); err != nil {
			t.Fatal(err)
		}
	}
	after := lat(fw, frame)
	wantDelta := int64(float64(8*ebpfInsnsPerMask) * ebpfNsPerInsn)
	if after-before != wantDelta {
		t.Fatalf("8 new masks grew latency by %dns, want %dns", after-before, wantDelta)
	}
}

// millionFlowStyleProgram mirrors the occupancy sweep's table shapes
// (exact/LPM/ternary over the same key widths, declared at 2^20), so
// the grant capacities documented in docs/targets.md and asserted by
// the full-scale sweep are pinned without installing two million
// entries.
const millionFlowStyleProgram = `
header key_t { bit<48> dmac; bit<48> smac; bit<32> dst; bit<32> src; bit<16> sport; }
struct hs { key_t k; }
parser MFParser(packet_in p, out hs hdr) {
  state start { p.extract(hdr.k); transition accept; }
}
control MFIngress(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table t_exact {
    key = { hdr.k.dst: exact; }
    actions = { fwd; NoAction; }
    size = 1048576;
  }
  table t_lpm {
    key = { hdr.k.dst: lpm; }
    actions = { fwd; NoAction; }
    size = 1048576;
  }
  table t_acl {
    key = { hdr.k.dst: ternary; hdr.k.src: ternary; hdr.k.sport: ternary; }
    actions = { fwd; NoAction; }
    size = 1048576;
  }
  apply { t_exact.apply(); t_lpm.apply(); t_acl.apply(); }
}
control MFDeparser(packet_out p, in hs hdr) { apply { p.emit(hdr.k); } }
S(MFParser(), MFIngress(), MFDeparser()) main;`

// TestEBPFSweepGrantCapacities pins the memlock water-fill against the
// occupancy sweep's table shapes: the three map types are priced at
// 72/112/48 bytes per entry — lpm-trie at kernel node economics, a
// 64-byte value-carrying leaf (40+4+4+16) plus a 48-byte amortized
// intermediate node (40+4+4) for the 4-byte key — so the default
// 128 MiB budget grants 621378 hash, 399457 lpm-trie, and 932067 scan
// entries of the 2^20 declared — the clip points the full-scale sweep
// and docs quote.
func TestEBPFSweepGrantCapacities(t *testing.T) {
	prog := mustProg(t, millionFlowStyleProgram)
	e := DefaultEBPFErrata()
	e.fill()
	maps, err := allocateMaps(prog.Tables(), e)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		kind       ebpfMapKind
		entryBytes int
		capacity   int
	}{
		"t_exact": {mapHash, 72, 621378},
		"t_lpm":   {mapLPMTrie, 112, 399457},
		"t_acl":   {mapMaskScan, 48, 932067},
	}
	for name, w := range want {
		m := maps[name]
		if m == nil {
			t.Fatalf("no map for %s", name)
		}
		if m.kind != w.kind || m.entryBytes != w.entryBytes || m.capacity != w.capacity {
			t.Errorf("%s: kind=%v entryBytes=%d capacity=%d, want %v/%d/%d",
				name, m.kind, m.entryBytes, m.capacity, w.kind, w.entryBytes, w.capacity)
		}
	}
}

func TestEBPFResources(t *testing.T) {
	eb := NewEBPF(DefaultEBPFErrata())
	if err := eb.Load(mustProg(t, p4test.Firewall)); err != nil {
		t.Fatal(err)
	}
	r := eb.Resources()
	if r.Insns <= 0 || r.Maps != 2 || r.MapBytes <= 0 {
		t.Fatalf("firewall estimate: %+v", r)
	}
	if r.MemlockPct <= 0 || r.InsnPct <= 0 {
		t.Fatalf("utilization percentages missing: %+v", r)
	}
	if r.Stages != 0 || r.LUTs != 0 {
		t.Fatalf("software offload must not report hardware fields: %+v", r)
	}
	if s := r.String(); !strings.Contains(s, "maps") || !strings.Contains(s, "memlock") {
		t.Fatalf("report should render the offload form: %q", s)
	}

	small := NewEBPF(DefaultEBPFErrata())
	if err := small.Load(mustProg(t, p4test.Reflector)); err != nil {
		t.Fatal(err)
	}
	if small.Resources().Insns >= r.Insns {
		t.Fatalf("reflector (%d insns) should be smaller than firewall (%d insns)",
			small.Resources().Insns, r.Insns)
	}
}

// TestEBPFAcceptsWideTernary: the mask-set scan has no TCAM width limit
// at all — the 128-bit key the SDNet flow rejects compiles fine.
func TestEBPFAcceptsWideTernary(t *testing.T) {
	if err := NewEBPF(DefaultEBPFErrata()).Load(mustProg(t, wideTernaryTestProgram)); err != nil {
		t.Fatalf("ebpf must accept a 128-bit ternary key: %v", err)
	}
}

const wideTernaryTestProgram = `
header h_t { bit<128> x; } struct hs { h_t h; }
parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
control I(inout hs hdr, inout standard_metadata_t sm) {
  action fwd(bit<9> port) { sm.egress_spec = port; }
  table t { key = { hdr.h.x: ternary; } actions = { fwd; } }
  apply { t.apply(); }
}
control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
S(P(), I(), D()) main;`

func BenchmarkEBPFProcessRouter(b *testing.B) {
	eb := NewEBPF(DefaultEBPFErrata())
	loadRouter(b, eb)
	frame := goodFrame()
	eb.Process(frame, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb.Process(frame, 0, false)
	}
}

func BenchmarkEBPFProcessFirewallTernary(b *testing.B) {
	eb := NewEBPF(DefaultEBPFErrata())
	if err := eb.Load(mustProg(b, p4test.Firewall)); err != nil {
		b.Fatal(err)
	}
	anyAddr := bitfield.New(0, 32)
	anyPort := bitfield.New(0, 16)
	if err := eb.InstallEntry(dataplane.Entry{
		Table: "acl", Action: "allow", Priority: 1,
		Keys: []dataplane.KeyValue{
			{Value: anyAddr, Mask: anyAddr},
			{Value: anyAddr, Mask: anyAddr},
			{Value: anyPort, Mask: anyPort},
		},
	}); err != nil {
		b.Fatal(err)
	}
	if err := eb.InstallEntry(dataplane.Entry{
		Table:  "routing",
		Keys:   []dataplane.KeyValue{{Value: bitfield.FromBytes(ipB[:]), PrefixLen: 24}},
		Action: "route",
		Args:   []bitfield.Value{bitfield.New(2, 9)},
	}); err != nil {
		b.Fatal(err)
	}
	frame := packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 6))
	eb.Process(frame, 0, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb.Process(frame, 0, false)
	}
}
