// Package target models the hardware backends a P4 program can be
// deployed onto: the data plane under test, as distinct from the device
// platform around it (package device) and the P4 reference semantics
// (package dataplane).
//
// # Interface contract
//
// A Target is a loadable data-plane backend. The lifecycle is:
//
//	tgt := target.NewReference()          // or NewSDNet(errata), NewTofino(errata)
//	err := tgt.Load(prog)                 // compile/transform + allocate state
//	tgt.InstallEntry(e)                   // control-plane writes, any time after Load
//	res := tgt.Process(frame, port, trace)
//
// Load may be called again to load a different program; it resets all
// table state. Targets that transform the program (SDNet) expose the
// transformed IR through Program — callers such as package verify analyze
// that IR to see the deployed (rather than the specified) semantics.
//
// Process runs one packet through the loaded pipeline and returns a
// Result. Results and the buffers they reference (output frame bytes,
// trace slices) are only valid until the next Process call on the same
// target: the hot path reuses per-target scratch state so that a
// steady-state Process performs no heap allocations. Callers that need to
// retain output bytes must copy them (the device model does this when it
// captures frames).
//
// A Target is NOT safe for concurrent use. Parallel harnesses (package
// scenario's worker pool, package tester's Fleet, netdebug.RunSuite)
// shard work by building one target/device per worker, never by sharing
// one behind a lock.
//
// Status exposes the target's internal counters (per parser state, per
// table hit/miss, per deparser emit) — the registers NetDebug reads over
// its dedicated control interface. Resources reports the estimated FPGA
// footprint of the loaded program; the software reference reports zero.
package target

import (
	"fmt"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/ir"
)

// Output is one output frame of a processed packet.
type Output struct {
	// Port is the egress port (standard_metadata.egress_spec).
	Port uint64
	// Data is the deparsed frame. Valid until the next Process call on
	// the originating target.
	Data []byte
}

// Result is the outcome of processing one packet through a target.
type Result struct {
	// Outputs holds the emitted frames (empty when dropped). The current
	// targets emit at most one frame per packet.
	Outputs []Output
	// Latency is the pipeline delay from the target's latency model,
	// excluding any wire/serialization time (the device adds that).
	Latency time.Duration
	// Trace is the internal execution record. Parser path and table
	// events are populated only when Process was called with trace=true;
	// the verdict, drop flag, and drop stage are always set.
	Trace dataplane.Trace
}

// Dropped reports whether the packet produced no output.
func (r Result) Dropped() bool { return len(r.Outputs) == 0 }

// Target is a loadable data-plane backend. See the package comment for
// the full interface contract.
type Target interface {
	// Name identifies the backend ("reference", "sdnet", ...).
	Name() string
	// Load compiles/transforms prog onto the target, replacing any
	// previously loaded program and clearing all tables.
	Load(prog *ir.Program) error
	// Program returns the IR the target actually executes (after any
	// errata transforms), or nil before Load.
	Program() *ir.Program
	// Process runs one frame through the pipeline. The Result is valid
	// until the next Process call.
	Process(frame []byte, ingressPort uint64, trace bool) Result
	// ProcessBatch runs a burst of frames, all from the same ingress
	// port, and returns one Result per frame. Unlike Process, every
	// result of the batch is valid simultaneously; the whole slice is
	// invalidated by the next ProcessBatch call on this target (results
	// survive interleaved single-packet Process calls, which use
	// separate scratch). This is the amortized path burst harnesses
	// (device.SendExternalBurst, the external tester) drive.
	ProcessBatch(frames [][]byte, ingressPort uint64, trace bool) []Result
	// InstallEntry installs a match-action table entry.
	InstallEntry(e dataplane.Entry) error
	// DeleteEntry removes one table entry by its match identity (see
	// dataplane.Engine.DeleteEntry) — the control-plane write rule
	// churn is made of. Deleting an absent key returns a
	// *dataplane.NoSuchEntryError.
	DeleteEntry(e dataplane.Entry) error
	// ClearTable removes every entry from a table.
	ClearTable(name string) error
	// Status reads the target's internal counters.
	Status() map[string]uint64
	// Resources estimates the hardware footprint of the loaded program.
	Resources() ResourceReport
	// TernaryGroups reports the number of distinct mask tuples installed
	// in a ternary table — the tuple-space probe count the occupancy
	// sweep's mask-diversity axis measures. 0 for non-ternary tables.
	TernaryGroups(table string) int
}

// ResourceReport estimates hardware resource consumption of a loaded
// program. FPGA targets (SDNet) fill the LUT/FF/BRAM fields, as
// percentages of the NetFPGA-SUME-class part (Virtex-7 690T) the paper
// targets; fixed-pipeline ASIC targets (Tofino) fill the stage, memory
// block, and PHV fields instead. The software reference reports zero
// everywhere.
type ResourceReport struct {
	LUTs, FFs, BRAMs       int
	LUTPct, FFPct, BRAMPct float64
	// ASIC-style footprint: pipeline stages occupied, SRAM/TCAM memory
	// blocks allocated by table placement, and PHV container bits
	// assigned to header fields. Zero on FPGA targets.
	Stages, SRAMBlocks, TCAMBlocks, PHVBits int
	StagePct, SRAMPct, TCAMPct, PHVPct      float64
	// Software-offload footprint (eBPF): generated program length
	// against the verifier budget, and BPF map count/bytes against the
	// memlock budget. Zero on hardware targets.
	Insns, Maps, MapBytes int
	InsnPct, MemlockPct   float64
	// SmartNIC/DPU footprint: table residency (accelerator vs core
	// complex, where spilled tables count as core-resident), the
	// accelerator grant in flow entries and bytes (including NIC TCAM
	// rows), and the punt economics — queue depth plus cumulative
	// per-table punt counters (keyed by table name, with "parser" for
	// exception-path punts of rejected frames). Zero/nil on the other
	// target classes.
	AccelTables, CoreTables, AccelEntries, AccelBytes int
	NICTCAMRows, PuntQueueDepth                       int
	AccelPct                                          float64
	TablePunts                                        map[string]uint64
}

// String renders the estimate.
func (r ResourceReport) String() string {
	if r.Stages > 0 {
		return fmt.Sprintf("stages %d (%.1f%%), SRAM %d (%.1f%%), TCAM %d (%.1f%%), PHV %db (%.1f%%)",
			r.Stages, r.StagePct, r.SRAMBlocks, r.SRAMPct, r.TCAMBlocks, r.TCAMPct, r.PHVBits, r.PHVPct)
	}
	if r.Maps > 0 {
		return fmt.Sprintf("insns %d (%.2f%%), maps %d, map bytes %d (%.1f%% of memlock)",
			r.Insns, r.InsnPct, r.Maps, r.MapBytes, r.MemlockPct)
	}
	if r.AccelTables > 0 || r.CoreTables > 0 {
		var punts uint64
		for _, n := range r.TablePunts {
			punts += n
		}
		return fmt.Sprintf("accel tables %d (%d flows, %d B, %.1f%% of NIC SRAM), core-resident %d, NIC TCAM %d rows, punt queue %d, punts %d",
			r.AccelTables, r.AccelEntries, r.AccelBytes, r.AccelPct, r.CoreTables, r.NICTCAMRows, r.PuntQueueDepth, punts)
	}
	if r.LUTs == 0 && r.FFs == 0 && r.BRAMs == 0 {
		return "no hardware cost (software target)"
	}
	return fmt.Sprintf("LUTs %d (%.1f%%), FFs %d (%.1f%%), BRAMs %d (%.1f%%)",
		r.LUTs, r.LUTPct, r.FFs, r.FFPct, r.BRAMs, r.BRAMPct)
}

// ModelBytes converts the report's form-specific footprint into bytes
// of modelled table memory, so the occupancy sweep can print one
// memory-per-entry column across backend classes. Each form charges
// what the architecture actually reserves: the eBPF offload its
// memlock map grants, the ASIC its placed SRAM/TCAM blocks, the FPGA
// its BRAM blocks. The reference target has no resource model and
// returns 0 — callers fall back to measured heap there.
func (r ResourceReport) ModelBytes() uint64 {
	switch {
	case r.Maps > 0:
		return uint64(r.MapBytes)
	case r.Stages > 0:
		sram := uint64(r.SRAMBlocks) * tofinoSRAMWidth * tofinoSRAMRows / 8
		tcam := uint64(r.TCAMBlocks) * tofinoTCAMWidth * tofinoTCAMRows / 8
		return sram + tcam
	case r.BRAMs > 0:
		return uint64(r.BRAMs) * sumeBRAMBytes
	case r.AccelBytes > 0:
		return uint64(r.AccelBytes)
	}
	return 0
}

// Virtex-7 690T capacity, the FPGA on the NetFPGA SUME.
const (
	sumeLUTs  = 433200
	sumeFFs   = 866400
	sumeBRAMs = 1470
	// One 36Kb block RAM, in bytes.
	sumeBRAMBytes = 36 * 1024 / 8
)

// pct caps a utilization percentage at 100.
func pct(n, capacity int) float64 {
	p := float64(n) / float64(capacity) * 100
	if p > 100 {
		p = 100
	}
	return p
}
