package target

// Tests for Target.ProcessBatch: per-frame results must match the
// single-packet path, stay simultaneously valid across the batch, and
// survive interleaved single-packet Process calls.

import (
	"bytes"
	"testing"

	"netdebug/internal/packet"
)

func batchRouter(t *testing.T, tgt Target) Target {
	t.Helper()
	loadRouter(t, tgt)
	return tgt
}

func batchFrames() [][]byte {
	var out [][]byte
	for i := 0; i < 5; i++ {
		out = append(out, packet.BuildUDPv4(macA, macB,
			ipA, packet.IPv4Addr{10, 0, 1, byte(i + 1)},
			uint16(4000+i), 53, []byte{byte(i)}))
	}
	// A malformed frame that the reference parser rejects.
	out = append(out, badVersionFrame())
	return out
}

func TestProcessBatchMatchesProcess(t *testing.T) {
	for _, mk := range []func() Target{
		NewReference,
		func() Target { return NewSDNet(DefaultErrata()) },
	} {
		tgt := batchRouter(t, mk())
		frames := batchFrames()
		var wantDropped []bool
		var wantData [][]byte
		for _, f := range frames {
			r := tgt.Process(f, 0, false)
			wantDropped = append(wantDropped, r.Dropped())
			if r.Dropped() {
				wantData = append(wantData, nil)
			} else {
				wantData = append(wantData, append([]byte(nil), r.Outputs[0].Data...))
			}
		}
		results := tgt.ProcessBatch(frames, 0, false)
		if len(results) != len(frames) {
			t.Fatalf("%s: %d results, want %d", tgt.Name(), len(results), len(frames))
		}
		for i, r := range results {
			if r.Dropped() != wantDropped[i] {
				t.Errorf("%s frame %d: dropped %v, want %v", tgt.Name(), i, r.Dropped(), wantDropped[i])
				continue
			}
			if !r.Dropped() && !bytes.Equal(r.Outputs[0].Data, wantData[i]) {
				t.Errorf("%s frame %d: output differs from single-packet path", tgt.Name(), i)
			}
		}
		// All batch outputs must be valid simultaneously, even after an
		// interleaved single-packet Process on the same target.
		tgt.Process(frames[0], 0, false)
		for i, r := range results {
			if !r.Dropped() && !bytes.Equal(r.Outputs[0].Data, wantData[i]) {
				t.Errorf("%s frame %d: batch output clobbered by later Process", tgt.Name(), i)
			}
		}
	}
}

func TestProcessBatchTrace(t *testing.T) {
	tgt := batchRouter(t, NewReference())
	frames := batchFrames()
	results := tgt.ProcessBatch(frames, 0, true)
	for i, r := range results {
		if len(r.Trace.ParserPath) == 0 {
			t.Errorf("frame %d: no parser path with trace on", i)
		}
	}
	// The malformed tail frame must be rejected by the reference parser.
	last := results[len(results)-1]
	if !last.Dropped() || last.Trace.DropStage != "parser" {
		t.Errorf("malformed frame: dropped=%v stage=%q, want parser drop", last.Dropped(), last.Trace.DropStage)
	}
}
