package target

// Cross-target differential tests: the five backends are only useful
// as a comparison matrix if their disagreements are exactly the
// documented errata. On erratum-free configurations (reference, SDNet
// with FixedErrata, Tofino with FixedTofinoErrata, eBPF with
// FixedEBPFErrata, smartnic with FixedSmartNICErrata) every probe must
// produce identical results packet-for-packet; with a default erratum
// enabled, the backends must disagree on precisely the predicted probe
// set and nowhere else. The split tests run the shipped (default-
// errata) flows at once and require every predicted probe set to
// isolate its backend(s) — the localization step pairwise comparison
// cannot provide.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// sameOutputs reports packet-level equality of two results.
func sameOutputs(a, b Result) bool {
	if a.Dropped() != b.Dropped() {
		return false
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if a.Outputs[i].Port != b.Outputs[i].Port ||
			string(a.Outputs[i].Data) != string(b.Outputs[i].Data) {
			return false
		}
	}
	return true
}

// routerProbe is one deterministic router input: dst chooses the route,
// malformed flips the IPv4 version, trunc cuts the frame mid-header.
type routerProbe struct {
	frame     []byte
	malformed bool
	trunc     bool
	routable  bool
}

func routerProbes(n int) []routerProbe {
	rng := rand.New(rand.NewSource(7))
	probes := make([]routerProbe, n)
	for i := range probes {
		dst := packet.IPv4Addr{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		routable := true
		if i%5 == 4 {
			dst = packet.IPv4Addr{172, 16, byte(i), 1} // off the 10/8 route
			routable = false
		}
		f := packet.BuildUDPv4(macA, macB, ipA, dst, uint16(1000+i), 53, make([]byte, rng.Intn(32)))
		p := routerProbe{frame: f, routable: routable}
		switch i % 7 {
		case 3:
			f[14] = 0x65 // bad version: parser reject
			p.malformed = true
		case 6:
			p.frame = f[:16] // truncated mid-IPv4: too short on every target
			p.trunc = true
		}
		probes[i] = p
	}
	return probes
}

func loadedRouter(t *testing.T, tgt Target) Target {
	t.Helper()
	loadRouter(t, tgt)
	return tgt
}

// TestCrossTargetRouterAgreement: with every erratum repaired, the
// five backends compute the same function packet-for-packet.
func TestCrossTargetRouterAgreement(t *testing.T) {
	ref := loadedRouter(t, NewReference())
	others := map[string]Target{
		"sdnet-fixed":    loadedRouter(t, NewSDNet(FixedErrata())),
		"tofino-fixed":   loadedRouter(t, NewTofino(FixedTofinoErrata())),
		"ebpf-fixed":     loadedRouter(t, NewEBPF(FixedEBPFErrata())),
		"smartnic-fixed": loadedRouter(t, NewSmartNIC(FixedSmartNICErrata())),
	}
	for i, p := range routerProbes(300) {
		want := ref.Process(p.frame, 0, false)
		wantDrop := want.Dropped()
		wantPort := uint64(0)
		var wantData string
		if !wantDrop {
			wantPort = want.Outputs[0].Port
			wantData = string(want.Outputs[0].Data)
		}
		for name, tgt := range others {
			got := tgt.Process(p.frame, 0, false)
			if got.Dropped() != wantDrop {
				t.Fatalf("probe %d (%+v): %s dropped=%v, reference dropped=%v",
					i, p, name, got.Dropped(), wantDrop)
			}
			if !wantDrop && (got.Outputs[0].Port != wantPort || string(got.Outputs[0].Data) != wantData) {
				t.Fatalf("probe %d: %s output differs from reference", i, name)
			}
		}
	}
}

// TestCrossTargetSDNetRejectDisagreement: the shipped SDNet flow must
// disagree with the reference exactly on malformed-but-routable frames
// (the unimplemented-reject erratum forwards them) and agree everywhere
// else.
func TestCrossTargetSDNetRejectDisagreement(t *testing.T) {
	ref := loadedRouter(t, NewReference())
	sd := loadedRouter(t, NewSDNet(DefaultErrata()))
	for i, p := range routerProbes(300) {
		ra := ref.Process(p.frame, 0, false)
		// Results alias per-target scratch; compare before the next call
		// on the same target.
		rb := sd.Process(p.frame, 0, false)
		disagree := !sameOutputs(ra, rb)
		wantDisagree := p.malformed && p.routable && !p.trunc
		if disagree != wantDisagree {
			t.Fatalf("probe %d (malformed=%v routable=%v trunc=%v): disagree=%v, want %v",
				i, p.malformed, p.routable, p.trunc, disagree, wantDisagree)
		}
	}
}

// TestCrossTargetTofinoLIFODisagreement: with two overlapping
// equal-priority ACL entries installed (allow first, exact-dst drop
// second), the shipped Tofino driver must disagree with the reference
// exactly on frames the second entry matches, and agree everywhere
// else.
func TestCrossTargetTofinoLIFODisagreement(t *testing.T) {
	ref := NewReference()
	tf := NewTofino(DefaultTofinoErrata())
	firewallFixture(t, ref)
	firewallFixture(t, tf)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		dst := ipB
		hitsDrop := true
		if i%3 != 0 {
			dst = packet.IPv4Addr{10, 0, 1, byte(rng.Intn(255))}
			hitsDrop = dst == ipB
		}
		frame := packet.BuildUDPv4(macA, macB, ipA, dst, uint16(2000+i), 53, make([]byte, 4))
		ra := ref.Process(frame, 0, false)
		rb := tf.Process(frame, 0, false)
		disagree := !sameOutputs(ra, rb)
		if disagree != hitsDrop {
			t.Fatalf("probe %d (dst=%v): disagree=%v, want %v (LIFO tie-break)",
				i, dst, disagree, hitsDrop)
		}
	}
}

// TestCrossTargetCapacityDivergence: the same fill workload trips each
// backend's capacity model at its own documented point — exact size on
// the reference, ~90% of declared on SDNet, and the per-stage placement
// grant on Tofino.
func TestCrossTargetCapacityDivergence(t *testing.T) {
	fill := func(tgt Target) int {
		prog := mustProg(t, p4test.BigExactTable) // declares 4096 entries
		if err := tgt.Load(prog); err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 8192; i++ {
			err := tgt.InstallEntry(dataplane.Entry{
				Table:  "big",
				Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(i), 32)}},
				Action: "fwd",
				Args:   []bitfield.Value{bitfield.New(1, 9)},
			})
			if err != nil {
				break
			}
			n++
		}
		return n
	}
	smallTofino := DefaultTofinoErrata()
	smallTofino.Stages, smallTofino.SRAMBlocks = 1, 3
	smallEBPF := FixedEBPFErrata() // fixed: the shipped flow lies instead of failing
	smallEBPF.MemlockBytes = 72 * 1500
	got := map[string]int{
		"reference": fill(NewReference()),
		"sdnet":     fill(NewSDNet(DefaultErrata())),
		"tofino":    fill(NewTofino(smallTofino)),
		"ebpf":      fill(NewEBPF(smallEBPF)),
	}
	want := map[string]int{
		"reference": 4096,          // declared size, exactly
		"sdnet":     4096 * 9 / 10, // usable-capacity erratum
		"tofino":    3 * 1024,      // 3 granted blocks x 1024 rows
		"ebpf":      1500,          // memlock grant / 72-byte hash entries
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s capacity = %d, want %d", name, got[name], n)
		}
	}
}

// TestCrossTargetEBPFZeroPrefixDisagreement: with a /0 default route
// installed alongside the 10/8 route, the shipped eBPF flow must
// disagree with the reference exactly on well-formed frames covered
// only by the default route (the LPM-trie /0 miss) and agree
// everywhere else.
func TestCrossTargetEBPFZeroPrefixDisagreement(t *testing.T) {
	withDefaultRoute := func(tgt Target) Target {
		loadRouter(t, tgt)
		if err := tgt.InstallEntry(defaultRouteEntry(2)); err != nil {
			t.Fatal(err)
		}
		return tgt
	}
	ref := withDefaultRoute(NewReference())
	eb := withDefaultRoute(NewEBPF(DefaultEBPFErrata()))
	fixed := withDefaultRoute(NewEBPF(FixedEBPFErrata()))
	for i, p := range routerProbes(300) {
		ra := ref.Process(p.frame, 0, false)
		rb := eb.Process(p.frame, 0, false)
		rc := fixed.Process(p.frame, 0, false)
		// Only frames that parse and miss the 10/8 route reach the /0
		// entry — that is the predicted probe set.
		wantDisagree := !p.routable && !p.malformed && !p.trunc
		if disagree := !sameOutputs(ra, rb); disagree != wantDisagree {
			t.Fatalf("probe %d (%+v): shipped ebpf disagree=%v, want %v",
				i, p, disagree, wantDisagree)
		}
		if !sameOutputs(ra, rc) {
			t.Fatalf("probe %d: fixed ebpf flow diverges from the reference", i)
		}
	}
}

// TestCrossTargetEBPFMapFullDisagreement: past the hash map's memlock
// capacity the shipped flow acknowledges installs it discards; the
// control-plane view agrees with the reference (both "hold" the
// entries) while the data plane disagrees exactly on the discarded
// flows — only probing can see the defect.
func TestCrossTargetEBPFMapFullDisagreement(t *testing.T) {
	prog := mustProg(t, p4test.BigExactTable)
	shipped := DefaultEBPFErrata()
	shipped.MemlockBytes = 72 * 100
	eb := NewEBPF(shipped)
	ref := NewReference()
	for _, tgt := range []Target{eb, ref} {
		if err := tgt.Load(prog); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			if err := tgt.InstallEntry(dataplane.Entry{
				Table:  "big",
				Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(i), 32)}},
				Action: "fwd",
				Args:   []bitfield.Value{bitfield.New(1, 9)},
			}); err != nil {
				t.Fatalf("%s: install %d must report success: %v", tgt.Name(), i, err)
			}
		}
	}
	for i := 0; i < 120; i++ {
		frame := []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
		ra := ref.Process(frame, 0, false)
		rb := eb.Process(frame, 0, false)
		if disagree, want := !sameOutputs(ra, rb), i >= 100; disagree != want {
			t.Fatalf("flow %d: disagree=%v, want %v (capacity 100, installs acknowledged to 120)",
				i, disagree, want)
		}
	}
}

// outcome is a comparable snapshot of a Result (Results alias
// per-target scratch, so they must be captured before reuse).
type outcome struct {
	dropped bool
	port    uint64
	data    string
}

func snapshot(r Result) outcome {
	if r.Dropped() {
		return outcome{dropped: true}
	}
	return outcome{port: r.Outputs[0].Port, data: string(r.Outputs[0].Data)}
}

// splitOn runs one probe through every backend and reports which
// backends diverge from the majority outcome. It fails the test if the
// outcomes do not split into a strict majority plus dissenters.
// (scenario.OddOneOut carries the same vote for device-level callers;
// it cannot be reused here because package scenario imports target.)
func splitOn(t *testing.T, backends map[string]Target, frame []byte) []string {
	t.Helper()
	got := make(map[string]outcome, len(backends))
	tally := map[outcome]int{}
	for name, tgt := range backends {
		o := snapshot(tgt.Process(frame, 0, false))
		got[name] = o
		tally[o]++
	}
	var majority outcome
	best := 0
	for o, n := range tally {
		if n > best {
			majority, best = o, n
		}
	}
	if best*2 <= len(backends) {
		t.Fatalf("no majority outcome: %v", tally)
	}
	var odd []string
	for name, o := range got {
		if o != majority {
			odd = append(odd, name)
		}
	}
	sort.Strings(odd)
	return odd
}

// TestCrossTargetThreeWaySplits is the headline of the four-backend
// matrix: each shipped flow's signature defect isolates exactly that
// backend against the agreement of the other three. Pairwise
// comparison can only say "A and B differ"; a three-way split names
// the deviant.
func TestCrossTargetThreeWaySplits(t *testing.T) {
	t.Run("router", func(t *testing.T) {
		backends := map[string]Target{
			"reference": NewReference(),
			"sdnet":     NewSDNet(DefaultErrata()),
			"tofino":    NewTofino(DefaultTofinoErrata()),
			"ebpf":      NewEBPF(DefaultEBPFErrata()),
		}
		for _, tgt := range backends {
			loadRouter(t, tgt)
			if err := tgt.InstallEntry(defaultRouteEntry(2)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			// Control probes: well-formed, on the 10/8 route — all four
			// must agree.
			ctl := packet.BuildUDPv4(macA, macB, ipA,
				packet.IPv4Addr{10, 0, byte(i), 7}, uint16(3000+i), 53, []byte{byte(i)})
			if odd := splitOn(t, backends, ctl); len(odd) != 0 {
				t.Fatalf("control probe %d: unexpected split, %v diverge", i, odd)
			}
			// Split 1: malformed but routable — only the SDNet flow
			// (reject compiled as accept) forwards.
			bad := append([]byte(nil), ctl...)
			bad[14] = 0x65
			if odd := splitOn(t, backends, bad); len(odd) != 1 || odd[0] != "sdnet" {
				t.Fatalf("malformed probe %d: %v diverge, want exactly [sdnet]", i, odd)
			}
			// Split 2: well-formed, covered only by the /0 route — only
			// the eBPF flow (LPM-trie /0 miss) drops.
			off := packet.BuildUDPv4(macA, macB, ipA,
				packet.IPv4Addr{192, 168, byte(i), 4}, uint16(3100+i), 53, []byte{byte(i)})
			if odd := splitOn(t, backends, off); len(odd) != 1 || odd[0] != "ebpf" {
				t.Fatalf("default-route probe %d: %v diverge, want exactly [ebpf]", i, odd)
			}
		}
	})
	t.Run("firewall", func(t *testing.T) {
		// Split 3: overlapping equal-priority ACL entries — only the
		// Tofino driver (LIFO tie-break) drops the tied probe.
		backends := map[string]Target{
			"reference": NewReference(),
			"sdnet":     NewSDNet(DefaultErrata()),
			"tofino":    NewTofino(DefaultTofinoErrata()),
			"ebpf":      NewEBPF(DefaultEBPFErrata()),
		}
		for _, tgt := range backends {
			firewallFixture(t, tgt)
		}
		tie := packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 6))
		if odd := splitOn(t, backends, tie); len(odd) != 1 || odd[0] != "tofino" {
			t.Fatalf("acl tie probe: %v diverge, want exactly [tofino]", odd)
		}
		// An untied destination forwards identically everywhere.
		clear := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 0, 1, 77}, 40000, 53, make([]byte, 6))
		if odd := splitOn(t, backends, clear); len(odd) != 0 {
			t.Fatalf("untied probe: unexpected split, %v diverge", odd)
		}
	})
}

// TestCrossTargetFiveWaySplits adds the smartnic flow to the matrix.
// Two consequences: its fail-open exception path pairs it with sdnet on
// malformed probes (the 2-2 surface the fuzz vote resolves against the
// reference anchor — here the five-way fleet still holds a 3-2
// majority), and its punt-MTU truncation isolates it alone on large
// punted frames.
func TestCrossTargetFiveWaySplits(t *testing.T) {
	t.Run("router", func(t *testing.T) {
		backends := map[string]Target{
			"reference": NewReference(),
			"sdnet":     NewSDNet(DefaultErrata()),
			"tofino":    NewTofino(DefaultTofinoErrata()),
			"ebpf":      NewEBPF(DefaultEBPFErrata()),
			"smartnic":  NewSmartNIC(DefaultSmartNICErrata()),
		}
		for _, tgt := range backends {
			loadRouter(t, tgt)
			if err := tgt.InstallEntry(defaultRouteEntry(2)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			// Control probes: all five agree (smartnic differs only in
			// latency, which the vote does not compare).
			ctl := packet.BuildUDPv4(macA, macB, ipA,
				packet.IPv4Addr{10, 0, byte(i), 7}, uint16(3000+i), 53, []byte{byte(i)})
			if odd := splitOn(t, backends, ctl); len(odd) != 0 {
				t.Fatalf("control probe %d: unexpected split, %v diverge", i, odd)
			}
			// Malformed but routable: sdnet (reject compiled as accept)
			// and smartnic (fail-open exception path) forward the same
			// bytes — the signature pair of the five-way matrix.
			bad := append([]byte(nil), ctl...)
			bad[14] = 0x65
			want := []string{"sdnet", "smartnic"}
			if odd := splitOn(t, backends, bad); !reflect.DeepEqual(odd, want) {
				t.Fatalf("malformed probe %d: %v diverge, want %v", i, odd, want)
			}
			// Covered only by the /0 route: the smartnic accelerator holds
			// the /0 entry natively, so ebpf's LPM-trie miss still
			// isolates ebpf alone, 4-1.
			off := packet.BuildUDPv4(macA, macB, ipA,
				packet.IPv4Addr{192, 168, byte(i), 4}, uint16(3100+i), 53, []byte{byte(i)})
			if odd := splitOn(t, backends, off); len(odd) != 1 || odd[0] != "ebpf" {
				t.Fatalf("default-route probe %d: %v diverge, want exactly [ebpf]", i, odd)
			}
		}
	})
	t.Run("firewall", func(t *testing.T) {
		backends := map[string]Target{
			"reference": NewReference(),
			"sdnet":     NewSDNet(DefaultErrata()),
			"tofino":    NewTofino(DefaultTofinoErrata()),
			"ebpf":      NewEBPF(DefaultEBPFErrata()),
			"smartnic":  NewSmartNIC(DefaultSmartNICErrata()),
		}
		for _, tgt := range backends {
			firewallFixture(t, tgt)
		}
		// The ACL tie still isolates tofino alone: smartnic punts the
		// wide-ternary acl lookup but the cores run the same FIFO
		// semantics as the reference.
		tie := packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 6))
		if odd := splitOn(t, backends, tie); len(odd) != 1 || odd[0] != "tofino" {
			t.Fatalf("acl tie probe: %v diverge, want exactly [tofino]", odd)
		}
		// A large allowed frame punts (core-resident acl) and comes back
		// clipped to the punt MTU: the truncation defect isolates
		// smartnic alone, invisible to any four-way fleet.
		big := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 0, 1, 77}, 40000, 53, make([]byte, 300))
		if odd := splitOn(t, backends, big); len(odd) != 1 || odd[0] != "smartnic" {
			t.Fatalf("large punted probe: %v diverge, want exactly [smartnic]", odd)
		}
	})
}
