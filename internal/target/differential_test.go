package target

// Cross-target differential tests: the three backends are only useful
// as a comparison matrix if their disagreements are exactly the
// documented errata. On erratum-free configurations (reference, SDNet
// with FixedErrata, Tofino with FixedTofinoErrata) every probe must
// produce identical results packet-for-packet; with a default erratum
// enabled, the backends must disagree on precisely the predicted probe
// set and nowhere else.

import (
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

// sameOutputs reports packet-level equality of two results.
func sameOutputs(a, b Result) bool {
	if a.Dropped() != b.Dropped() {
		return false
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Outputs {
		if a.Outputs[i].Port != b.Outputs[i].Port ||
			string(a.Outputs[i].Data) != string(b.Outputs[i].Data) {
			return false
		}
	}
	return true
}

// routerProbe is one deterministic router input: dst chooses the route,
// malformed flips the IPv4 version, trunc cuts the frame mid-header.
type routerProbe struct {
	frame     []byte
	malformed bool
	trunc     bool
	routable  bool
}

func routerProbes(n int) []routerProbe {
	rng := rand.New(rand.NewSource(7))
	probes := make([]routerProbe, n)
	for i := range probes {
		dst := packet.IPv4Addr{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		routable := true
		if i%5 == 4 {
			dst = packet.IPv4Addr{172, 16, byte(i), 1} // off the 10/8 route
			routable = false
		}
		f := packet.BuildUDPv4(macA, macB, ipA, dst, uint16(1000+i), 53, make([]byte, rng.Intn(32)))
		p := routerProbe{frame: f, routable: routable}
		switch i % 7 {
		case 3:
			f[14] = 0x65 // bad version: parser reject
			p.malformed = true
		case 6:
			p.frame = f[:16] // truncated mid-IPv4: too short on every target
			p.trunc = true
		}
		probes[i] = p
	}
	return probes
}

func loadedRouter(t *testing.T, tgt Target) Target {
	t.Helper()
	loadRouter(t, tgt)
	return tgt
}

// TestCrossTargetRouterAgreement: with every erratum repaired, the
// three backends compute the same function packet-for-packet.
func TestCrossTargetRouterAgreement(t *testing.T) {
	ref := loadedRouter(t, NewReference())
	others := map[string]Target{
		"sdnet-fixed":  loadedRouter(t, NewSDNet(FixedErrata())),
		"tofino-fixed": loadedRouter(t, NewTofino(FixedTofinoErrata())),
	}
	for i, p := range routerProbes(300) {
		want := ref.Process(p.frame, 0, false)
		wantDrop := want.Dropped()
		wantPort := uint64(0)
		var wantData string
		if !wantDrop {
			wantPort = want.Outputs[0].Port
			wantData = string(want.Outputs[0].Data)
		}
		for name, tgt := range others {
			got := tgt.Process(p.frame, 0, false)
			if got.Dropped() != wantDrop {
				t.Fatalf("probe %d (%+v): %s dropped=%v, reference dropped=%v",
					i, p, name, got.Dropped(), wantDrop)
			}
			if !wantDrop && (got.Outputs[0].Port != wantPort || string(got.Outputs[0].Data) != wantData) {
				t.Fatalf("probe %d: %s output differs from reference", i, name)
			}
		}
	}
}

// TestCrossTargetSDNetRejectDisagreement: the shipped SDNet flow must
// disagree with the reference exactly on malformed-but-routable frames
// (the unimplemented-reject erratum forwards them) and agree everywhere
// else.
func TestCrossTargetSDNetRejectDisagreement(t *testing.T) {
	ref := loadedRouter(t, NewReference())
	sd := loadedRouter(t, NewSDNet(DefaultErrata()))
	for i, p := range routerProbes(300) {
		ra := ref.Process(p.frame, 0, false)
		// Results alias per-target scratch; compare before the next call
		// on the same target.
		rb := sd.Process(p.frame, 0, false)
		disagree := !sameOutputs(ra, rb)
		wantDisagree := p.malformed && p.routable && !p.trunc
		if disagree != wantDisagree {
			t.Fatalf("probe %d (malformed=%v routable=%v trunc=%v): disagree=%v, want %v",
				i, p.malformed, p.routable, p.trunc, disagree, wantDisagree)
		}
	}
}

// TestCrossTargetTofinoLIFODisagreement: with two overlapping
// equal-priority ACL entries installed (allow first, exact-dst drop
// second), the shipped Tofino driver must disagree with the reference
// exactly on frames the second entry matches, and agree everywhere
// else.
func TestCrossTargetTofinoLIFODisagreement(t *testing.T) {
	ref := NewReference()
	tf := NewTofino(DefaultTofinoErrata())
	firewallFixture(t, ref)
	firewallFixture(t, tf)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		dst := ipB
		hitsDrop := true
		if i%3 != 0 {
			dst = packet.IPv4Addr{10, 0, 1, byte(rng.Intn(255))}
			hitsDrop = dst == ipB
		}
		frame := packet.BuildUDPv4(macA, macB, ipA, dst, uint16(2000+i), 53, make([]byte, 4))
		ra := ref.Process(frame, 0, false)
		rb := tf.Process(frame, 0, false)
		disagree := !sameOutputs(ra, rb)
		if disagree != hitsDrop {
			t.Fatalf("probe %d (dst=%v): disagree=%v, want %v (LIFO tie-break)",
				i, dst, disagree, hitsDrop)
		}
	}
}

// TestCrossTargetCapacityDivergence: the same fill workload trips each
// backend's capacity model at its own documented point — exact size on
// the reference, ~90% of declared on SDNet, and the per-stage placement
// grant on Tofino.
func TestCrossTargetCapacityDivergence(t *testing.T) {
	fill := func(tgt Target) int {
		prog := mustProg(t, p4test.BigExactTable) // declares 4096 entries
		if err := tgt.Load(prog); err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := 0; i < 8192; i++ {
			err := tgt.InstallEntry(dataplane.Entry{
				Table:  "big",
				Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(i), 32)}},
				Action: "fwd",
				Args:   []bitfield.Value{bitfield.New(1, 9)},
			})
			if err != nil {
				break
			}
			n++
		}
		return n
	}
	smallTofino := DefaultTofinoErrata()
	smallTofino.Stages, smallTofino.SRAMBlocks = 1, 3
	got := map[string]int{
		"reference": fill(NewReference()),
		"sdnet":     fill(NewSDNet(DefaultErrata())),
		"tofino":    fill(NewTofino(smallTofino)),
	}
	want := map[string]int{
		"reference": 4096,          // declared size, exactly
		"sdnet":     4096 * 9 / 10, // usable-capacity erratum
		"tofino":    3 * 1024,      // 3 granted blocks x 1024 rows
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s capacity = %d, want %d", name, got[name], n)
		}
	}
}
