package target

import (
	"fmt"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/ir"
)

// Errata describes the documented defects and architectural limits of
// the modelled Xilinx SDNet flow. The zero value models a defect-free,
// limit-free flow; use DefaultErrata for the shipped behaviour the paper
// studies and FixedErrata for the flow with every compiler defect
// repaired (architectural limits remain — they are hardware properties,
// not bugs).
type Errata struct {
	// ImplementsReject reports whether the compiler implements the P4
	// reject parser state. When false (the §4 case study), every
	// transition to reject is compiled as a transition to accept, so
	// malformed packets continue through the match-action pipeline.
	ImplementsReject bool
	// UsableCapacityNum/Den scale every table's declared size down to
	// its usable capacity: BRAM packing overhead makes part of the
	// declared entries unusable. Zero values mean full capacity.
	UsableCapacityNum, UsableCapacityDen int
	// MaxTernaryKeyBits is the widest ternary key the flow can map onto
	// its TCAM emulation; wider keys are rejected at load time. Zero
	// means unlimited.
	MaxTernaryKeyBits int
}

// DefaultErrata is the shipped SDNet flow: reject unimplemented, ~90%
// usable table capacity, 64-bit ternary key limit.
func DefaultErrata() Errata {
	return Errata{
		ImplementsReject:  false,
		UsableCapacityNum: 9, UsableCapacityDen: 10,
		MaxTernaryKeyBits: 64,
	}
}

// FixedErrata is the SDNet flow with every compiler defect repaired.
// The architectural limits (usable capacity, ternary width) remain.
func FixedErrata() Errata {
	e := DefaultErrata()
	e.ImplementsReject = true
	return e
}

// sdnetLatency is the modelled pipeline delay of the SDNet flow: deeper
// than the reference pipeline (packet engines plus lookup engines), but
// still well under the serialization time of a full-size frame.
const sdnetLatency = 440 * time.Nanosecond

// sdnet models the Xilinx SDNet compilation flow: the program is
// transformed per the flow's errata before execution, and resource usage
// is estimated for the generated RTL.
type sdnet struct {
	pipeline
	errata    Errata
	resources ResourceReport
}

// NewSDNet returns a target modelling the SDNet flow with the given
// errata.
func NewSDNet(e Errata) Target {
	return &sdnet{pipeline: pipeline{latency: sdnetLatency}, errata: e}
}

func (s *sdnet) Name() string { return "sdnet" }

func (s *sdnet) Load(prog *ir.Program) error {
	if prog == nil {
		return fmt.Errorf("target: sdnet: nil program")
	}
	if s.errata.MaxTernaryKeyBits > 0 {
		for _, t := range prog.Tables() {
			for i, k := range t.Keys {
				if k.Kind == ir.MatchTernary && k.Expr.Width() > s.errata.MaxTernaryKeyBits {
					return fmt.Errorf("target: sdnet: table %s key %d: ternary key of %d bits exceeds the %d-bit TCAM limit",
						t.Name, i, k.Expr.Width(), s.errata.MaxTernaryKeyBits)
				}
			}
		}
	}
	compiled := prog
	if !s.errata.ImplementsReject {
		compiled = rewriteRejectToAccept(prog)
	}
	s.load(compiled)
	if s.errata.UsableCapacityNum > 0 && s.errata.UsableCapacityDen > 0 {
		for _, t := range compiled.Tables() {
			usable := t.Size * s.errata.UsableCapacityNum / s.errata.UsableCapacityDen
			if usable < 1 {
				usable = 1
			}
			s.eng.SetTableCapacity(t.Name, usable)
		}
	}
	s.resources = estimateResources(compiled)
	return nil
}

// Program returns the transformed IR the flow actually deploys — on the
// default errata, reject transitions have been rewritten to accept, so
// program-level analyses of this IR see the deployed (buggy) semantics.
func (s *sdnet) Program() *ir.Program { return s.prog }

func (s *sdnet) Process(frame []byte, ingressPort uint64, trace bool) Result {
	return s.process(frame, ingressPort, trace)
}

func (s *sdnet) ProcessBatch(frames [][]byte, ingressPort uint64, trace bool) []Result {
	return s.processBatch(frames, ingressPort, trace)
}

func (s *sdnet) InstallEntry(e dataplane.Entry) error { return s.installEntry(e) }
func (s *sdnet) DeleteEntry(e dataplane.Entry) error  { return s.deleteEntry(e) }
func (s *sdnet) ClearTable(name string) error         { return s.clearTable(name) }
func (s *sdnet) Status() map[string]uint64            { return s.status() }
func (s *sdnet) Resources() ResourceReport            { return s.resources }
func (s *sdnet) TernaryGroups(name string) int        { return s.ternaryGroups(name) }

// rewriteRejectToAccept returns a copy of prog whose parser never
// transitions to reject: the unimplemented-reject erratum. Only the
// parser graph is copied; header types, controls, and the deparser are
// shared with the original program, which is left untouched.
func rewriteRejectToAccept(prog *ir.Program) *ir.Program {
	out := *prog
	if prog.Parser == nil {
		return &out
	}
	parser := &ir.Parser{Start: prog.Parser.Start}
	redirect := func(next int) int {
		if next == ir.StateReject {
			return ir.StateAccept
		}
		return next
	}
	parser.States = make([]*ir.ParserState, len(prog.Parser.States))
	for i, st := range prog.Parser.States {
		ns := *st
		ns.Trans.Default = redirect(st.Trans.Default)
		ns.Trans.Cases = make([]ir.TransCase, len(st.Trans.Cases))
		for j, c := range st.Trans.Cases {
			ns.Trans.Cases[j] = c
			ns.Trans.Cases[j].Next = redirect(c.Next)
		}
		parser.States[i] = &ns
	}
	parser.Start = redirect(parser.Start)
	out.Parser = parser
	return &out
}

// estimateResources derives an RTL footprint estimate from the compiled
// IR, in the style of the SDNet resource reports the paper tabulates:
// a fixed shell (MACs, AXI plumbing, DMA) plus per-construct costs.
func estimateResources(prog *ir.Program) ResourceReport {
	// Shell overhead of the SUME reference design.
	luts, ffs, brams := 18500, 31400, 116

	headerBits := 0
	for _, inst := range prog.Instances {
		headerBits += inst.Type.Bits
	}
	// Header vectors are pipelined through every stage.
	ffs += headerBits * 4
	luts += headerBits * 2

	if prog.Parser != nil {
		for _, st := range prog.Parser.States {
			luts += 220 + 90*len(st.Ops) + 60*len(st.Trans.Cases)
			ffs += 140
		}
	}
	for _, c := range prog.Controls {
		luts += 180 + 45*countStmts(c.Apply)
		for _, a := range c.Actions {
			luts += 35 * countStmts(a.Body)
			for _, p := range a.Params {
				ffs += p.Width
			}
		}
	}
	for _, t := range prog.Tables() {
		keyBits := 0
		for _, w := range t.KeyWidths() {
			keyBits += w
		}
		actionBits := 0
		for _, a := range t.Actions {
			for _, p := range a.Params {
				actionBits += p.Width
			}
		}
		// Lookup engine logic, costed by the most expensive match kind
		// present: ternary emulation is by far the widest.
		perKeyLUTs := 6 // exact (hash/CAM)
		for _, k := range t.Keys {
			switch k.Kind {
			case ir.MatchLPM:
				if perKeyLUTs < 14 {
					perKeyLUTs = 14
				}
			case ir.MatchTernary:
				perKeyLUTs = 40
			}
		}
		luts += 300 + keyBits*perKeyLUTs
		ffs += keyBits * 3
		// Entry storage in 36Kb BRAMs.
		bits := t.Size * (keyBits + actionBits + 16)
		brams += (bits + 36*1024 - 1) / (36 * 1024)
	}
	if prog.Deparser != nil {
		luts += 120 * countStmts(prog.Deparser.Stmts)
	}
	return ResourceReport{
		LUTs: luts, FFs: ffs, BRAMs: brams,
		LUTPct:  pct(luts, sumeLUTs),
		FFPct:   pct(ffs, sumeFFs),
		BRAMPct: pct(brams, sumeBRAMs),
	}
}

// countStmts counts statements recursively through If branches.
func countStmts(stmts []ir.Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		if ifs, ok := s.(*ir.If); ok {
			n += countStmts(ifs.Then) + countStmts(ifs.Else)
		}
	}
	return n
}
