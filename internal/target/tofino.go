package target

import (
	"fmt"
	"time"

	"netdebug/internal/dataplane"
	"netdebug/internal/p4/ir"
)

// TofinoErrata describes the documented quirks and the architectural
// geometry of the modelled Tofino-style fixed-pipeline ASIC flow. As
// with the SDNet Errata, the zero value models a defect-free flow with
// the real part's geometry; use DefaultTofinoErrata for the shipped
// behaviour and FixedTofinoErrata for the flow with the driver quirk
// repaired (the geometry limits remain — they are silicon properties,
// not bugs).
type TofinoErrata struct {
	// TernaryPriorityLIFO is the shipped table-driver quirk: ternary
	// entries with equal priority resolve newest-installed-first,
	// inverting the P4 reference rule (first installed wins). Packets
	// matched by two overlapping same-priority entries take the other
	// action than they would on a conforming target.
	TernaryPriorityLIFO bool

	// Geometry overrides, for tests and scenarios that need a small
	// pipeline; zero values select the modelled part (see the tofino*
	// constants).
	Stages     int // match-action stages
	SRAMBlocks int // SRAM blocks per stage (128b x 1024 rows each)
	TCAMBlocks int // TCAM blocks per stage (44b x 512 rows each)
	PHV8       int // 8-bit PHV containers
	PHV16      int // 16-bit PHV containers
	PHV32      int // 32-bit PHV containers
}

// DefaultTofinoErrata is the shipped Tofino-style flow: real geometry,
// ternary priority ties resolved newest-first.
func DefaultTofinoErrata() TofinoErrata {
	return TofinoErrata{TernaryPriorityLIFO: true}
}

// FixedTofinoErrata is the flow with the driver quirk repaired. The
// per-stage placement limits and PHV budget remain.
func FixedTofinoErrata() TofinoErrata { return TofinoErrata{} }

// The modelled part's geometry: a fixed pipeline of match-action
// stages, each with its own SRAM and TCAM banks, fed by a packet
// header vector of fixed-width containers.
const (
	tofinoStages     = 12
	tofinoSRAMBlocks = 80 // per stage; each 128 bits x 1024 rows
	tofinoTCAMBlocks = 24 // per stage; each 44 bits x 512 rows
	tofinoPHV8       = 64
	tofinoPHV16      = 96
	tofinoPHV32      = 64

	tofinoSRAMWidth = 128
	tofinoSRAMRows  = 1024
	tofinoTCAMWidth = 44
	tofinoTCAMRows  = 512

	// entryOverheadBits is the per-entry bookkeeping stored alongside
	// the match data: action id, validity, and next-table pointer.
	entryOverheadBits = 16
)

// tofinoLatency is the fixed pipeline delay of the modelled part. A
// fixed-stage ASIC pipeline takes the same time regardless of program
// complexity — every packet traverses every stage — which is itself a
// measurable cross-target difference from the SDNet flow, whose depth
// follows the program.
const tofinoLatency = 390 * time.Nanosecond

func (e *TofinoErrata) fill() {
	if e.Stages == 0 {
		e.Stages = tofinoStages
	}
	if e.SRAMBlocks == 0 {
		e.SRAMBlocks = tofinoSRAMBlocks
	}
	if e.TCAMBlocks == 0 {
		e.TCAMBlocks = tofinoTCAMBlocks
	}
	if e.PHV8 == 0 {
		e.PHV8 = tofinoPHV8
	}
	if e.PHV16 == 0 {
		e.PHV16 = tofinoPHV16
	}
	if e.PHV32 == 0 {
		e.PHV32 = tofinoPHV32
	}
}

// tofino models a Tofino-style fixed-pipeline ASIC backend: the
// program executes with reference parser semantics (reject is
// implemented correctly), but table state is constrained by a
// per-stage placement model — each table is granted SRAM or TCAM
// blocks from the pipeline's fixed budget, and its usable capacity is
// whatever the grant holds, not the declared size — and the shipped
// driver resolves equal-priority ternary entries newest-first.
type tofino struct {
	pipeline
	errata    TofinoErrata
	resources ResourceReport
}

// NewTofino returns a target modelling the Tofino-style flow with the
// given errata.
func NewTofino(e TofinoErrata) Target {
	e.fill()
	return &tofino{pipeline: pipeline{latency: tofinoLatency}, errata: e}
}

func (t *tofino) Name() string { return "tofino" }

func (t *tofino) Load(prog *ir.Program) error {
	if prog == nil {
		return fmt.Errorf("target: tofino: nil program")
	}
	phv, err := allocatePHV(prog, t.errata)
	if err != nil {
		return err
	}
	placement, err := placeTables(prog, t.errata)
	if err != nil {
		return err
	}
	t.load(prog)
	for _, p := range placement {
		if p.capacity < p.table.Size {
			if err := t.eng.SetTableCapacity(p.table.Name, p.capacity); err != nil {
				return err
			}
		}
	}
	if t.errata.TernaryPriorityLIFO {
		for _, p := range placement {
			if !p.tcam {
				continue
			}
			if err := t.eng.SetTernaryTieBreak(p.table.Name, true); err != nil {
				return err
			}
		}
	}
	t.resources = tofinoResources(placement, phv, t.errata)
	return nil
}

// Program returns the deployed IR. The Tofino flow does not transform
// the program — its deviations (placement capacity, tie-break order)
// are table-state properties, invisible at the IR level; that is
// exactly why program-level verification cannot see them.
func (t *tofino) Program() *ir.Program { return t.prog }

func (t *tofino) Process(frame []byte, ingressPort uint64, trace bool) Result {
	return t.process(frame, ingressPort, trace)
}

func (t *tofino) ProcessBatch(frames [][]byte, ingressPort uint64, trace bool) []Result {
	return t.processBatch(frames, ingressPort, trace)
}

func (t *tofino) InstallEntry(e dataplane.Entry) error { return t.installEntry(e) }
func (t *tofino) DeleteEntry(e dataplane.Entry) error  { return t.deleteEntry(e) }
func (t *tofino) ClearTable(name string) error         { return t.clearTable(name) }
func (t *tofino) Status() map[string]uint64            { return t.status() }
func (t *tofino) Resources() ResourceReport            { return t.resources }
func (t *tofino) TernaryGroups(name string) int        { return t.ternaryGroups(name) }

// phvAlloc is the result of packing header fields into PHV containers.
type phvAlloc struct {
	used8, used16, used32 int
}

func (a phvAlloc) bits() int { return a.used8*8 + a.used16*16 + a.used32*32 }

// allocatePHV packs every header and metadata field into the fixed
// pool of 8/16/32-bit PHV containers. Fields wider than 32 bits span
// multiple 32-bit containers; small fields spill upward into wider
// containers when their own class runs out. Programs whose headers
// exceed the PHV budget fail to load — the Tofino analog of an FPGA
// flow running out of fabric.
func allocatePHV(prog *ir.Program, e TofinoErrata) (phvAlloc, error) {
	var need8, need16, need32 int
	for _, inst := range prog.Instances {
		for _, f := range inst.Type.Fields {
			w := f.Width
			for w > 32 {
				need32++
				w -= 32
			}
			switch {
			case w > 16:
				need32++
			case w > 8:
				need16++
			case w > 0:
				need8++
			}
		}
	}
	a := phvAlloc{used8: need8, used16: need16, used32: need32}
	if spill := a.used8 - e.PHV8; spill > 0 {
		a.used8 = e.PHV8
		a.used16 += spill
	}
	if spill := a.used16 - e.PHV16; spill > 0 {
		a.used16 = e.PHV16
		a.used32 += spill
	}
	if a.used32 > e.PHV32 {
		return phvAlloc{}, fmt.Errorf(
			"target: tofino: program needs %d 32-bit PHV containers (after spill), part has %d",
			a.used32, e.PHV32)
	}
	return a, nil
}

// tablePlacement is one table's memory grant.
type tablePlacement struct {
	table *ir.Table
	tcam  bool
	// words is the number of parallel blocks one entry row occupies
	// (SRAM words for exact/LPM, 44-bit TCAM slices for ternary).
	words int
	// blocks is the number of memory blocks granted.
	blocks int
	// capacity is the usable entry count the grant holds, at most the
	// declared size.
	capacity int
}

// placeTables runs the placement model: every table requests enough
// SRAM (exact/LPM) or TCAM (ternary) blocks for its declared size, and
// the pipeline's fixed budget is divided by water-filling — tables that
// need less than a fair share keep what they need, the rest split the
// remainder. A table whose grant cannot hold even one row-group of
// entries fails the load, as the real compiler's placement pass would.
func placeTables(prog *ir.Program, e TofinoErrata) ([]tablePlacement, error) {
	tables := prog.Tables()
	// Sequentially-applied tables are dependent: each needs its own
	// stage, so a chain longer than the pipeline cannot be placed at
	// all — fail the load rather than silently clamping.
	if len(tables) > e.Stages {
		return nil, fmt.Errorf(
			"target: tofino: program applies %d dependent tables, pipeline has %d stages",
			len(tables), e.Stages)
	}
	placement := make([]tablePlacement, len(tables))
	var sramIdx, tcamIdx []int
	var sramReq, tcamReq []int
	for i, t := range tables {
		p := tablePlacement{table: t}
		keyBits, actionBits := 0, 0
		for _, k := range t.Keys {
			if k.Kind == ir.MatchTernary {
				p.tcam = true
			}
			w := k.Expr.Width()
			if k.Kind == ir.MatchLPM {
				// Algorithmic LPM prices from the multibit trie geometry
				// the data plane actually builds — key bits plus an
				// encoded prefix length and per-entry node bookkeeping —
				// not the old 2x-the-key-bits heuristic.
				w = dataplane.LPMEntryBits(w)
			}
			keyBits += w
		}
		for _, a := range t.Actions {
			bits := 0
			for _, prm := range a.Params {
				bits += prm.Width
			}
			if bits > actionBits {
				actionBits = bits // the word stores the widest action's data
			}
		}
		if p.tcam {
			p.words = (keyBits + tofinoTCAMWidth - 1) / tofinoTCAMWidth
			if p.words > e.TCAMBlocks {
				return nil, fmt.Errorf(
					"target: tofino: table %s: %d-bit ternary key needs %d TCAM slices, a stage has %d",
					t.Name, keyBits, p.words, e.TCAMBlocks)
			}
			rowGroups := (t.Size + tofinoTCAMRows - 1) / tofinoTCAMRows
			tcamIdx = append(tcamIdx, i)
			tcamReq = append(tcamReq, p.words*rowGroups)
		} else {
			entryBits := keyBits + actionBits + entryOverheadBits
			p.words = (entryBits + tofinoSRAMWidth - 1) / tofinoSRAMWidth
			rowGroups := (t.Size + tofinoSRAMRows - 1) / tofinoSRAMRows
			sramIdx = append(sramIdx, i)
			sramReq = append(sramReq, p.words*rowGroups)
		}
		placement[i] = p
	}
	for _, alloc := range []struct {
		idx    []int
		req    []int
		total  int
		rows   int
		memory string
	}{
		{sramIdx, sramReq, e.Stages * e.SRAMBlocks, tofinoSRAMRows, "SRAM"},
		{tcamIdx, tcamReq, e.Stages * e.TCAMBlocks, tofinoTCAMRows, "TCAM"},
	} {
		grants := waterfill(alloc.req, alloc.total)
		for j, i := range alloc.idx {
			p := &placement[i]
			p.blocks = grants[j]
			p.capacity = (p.blocks / p.words) * alloc.rows
			if p.capacity > p.table.Size {
				p.capacity = p.table.Size
			}
			if p.capacity == 0 {
				return nil, fmt.Errorf(
					"target: tofino: table %s: placement failed, %d %s blocks granted of %d requested",
					p.table.Name, p.blocks, alloc.memory, alloc.req[j])
			}
		}
	}
	return placement, nil
}

// waterfill divides total blocks among competing requests: each request
// is granted up to a fair share of the pool, and slack from requests
// smaller than the share is redistributed until the pool or the
// requests are exhausted.
func waterfill(requests []int, total int) []int {
	grants := make([]int, len(requests))
	pending := make([]int, 0, len(requests))
	for i, r := range requests {
		if r > 0 {
			pending = append(pending, i)
		}
	}
	for len(pending) > 0 && total > 0 {
		share := total / len(pending)
		if share == 0 {
			share = 1
		}
		next := pending[:0]
		for _, i := range pending {
			give := requests[i] - grants[i]
			if give > share {
				give = share
			}
			if give > total {
				give = total
			}
			grants[i] += give
			total -= give
			if grants[i] < requests[i] {
				next = append(next, i)
			}
		}
		pending = next
	}
	return grants
}

// tofinoResources summarizes a placement as the ASIC-style footprint
// report: stages occupied (each sequentially-dependent table needs its
// own stage, and memory grants spill across stages), memory blocks, and
// PHV bits.
func tofinoResources(placement []tablePlacement, phv phvAlloc, e TofinoErrata) ResourceReport {
	sram, tcam := 0, 0
	for _, p := range placement {
		if p.tcam {
			tcam += p.blocks
		} else {
			sram += p.blocks
		}
	}
	stages := len(placement) // the dependency-chain lower bound
	if s := (sram + e.SRAMBlocks - 1) / e.SRAMBlocks; s > stages {
		stages = s
	}
	if s := (tcam + e.TCAMBlocks - 1) / e.TCAMBlocks; s > stages {
		stages = s
	}
	if stages < 1 {
		stages = 1 // parser occupies the pipeline front even with no tables
	}
	phvTotal := e.PHV8*8 + e.PHV16*16 + e.PHV32*32
	return ResourceReport{
		Stages:     stages,
		SRAMBlocks: sram,
		TCAMBlocks: tcam,
		PHVBits:    phv.bits(),
		StagePct:   pct(stages, e.Stages),
		SRAMPct:    pct(sram, e.Stages*e.SRAMBlocks),
		TCAMPct:    pct(tcam, e.Stages*e.TCAMBlocks),
		PHVPct:     pct(phv.bits(), phvTotal),
	}
}
