package target

import (
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	gw   = packet.MAC{2, 0, 0, 0, 0xff, 1}
	ipA  = packet.IPv4Addr{10, 0, 0, 1}
	ipB  = packet.IPv4Addr{10, 0, 1, 2}
)

func mustProg(t testing.TB, src string) *ir.Program {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func loadRouter(t testing.TB, tgt Target) {
	t.Helper()
	if err := tgt.Load(mustProg(t, p4test.Router)); err != nil {
		t.Fatal(err)
	}
	err := tgt.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func goodFrame() []byte {
	return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, 26))
}

func badVersionFrame() []byte {
	f := goodFrame()
	f[14] = 0x65
	return f
}

func TestReferenceRejectsMalformed(t *testing.T) {
	tgt := NewReference()
	loadRouter(t, tgt)
	res := tgt.Process(badVersionFrame(), 0, true)
	if !res.Dropped() {
		t.Fatal("reference must drop parser-rejected packets")
	}
	if res.Trace.Verdict != dataplane.VerdictReject {
		t.Fatalf("verdict = %v", res.Trace.Verdict)
	}
	res = tgt.Process(goodFrame(), 0, false)
	if res.Dropped() || res.Outputs[0].Port != 1 {
		t.Fatalf("good frame: %+v", res)
	}
	if res.Latency != referenceLatency {
		t.Fatalf("latency = %v", res.Latency)
	}
}

func TestSDNetRejectErratum(t *testing.T) {
	sd := NewSDNet(DefaultErrata())
	loadRouter(t, sd)
	res := sd.Process(badVersionFrame(), 0, true)
	if res.Dropped() {
		t.Fatal("sdnet with the reject erratum must forward malformed packets")
	}
	if res.Outputs[0].Port != 1 {
		t.Fatalf("egress = %d", res.Outputs[0].Port)
	}

	fixed := NewSDNet(FixedErrata())
	loadRouter(t, fixed)
	if res := fixed.Process(badVersionFrame(), 0, true); !res.Dropped() {
		t.Fatal("fixed sdnet must drop malformed packets")
	}
}

func TestSDNetTransformLeavesOriginalIntact(t *testing.T) {
	prog := mustProg(t, p4test.Router)
	sd := NewSDNet(DefaultErrata())
	if err := sd.Load(prog); err != nil {
		t.Fatal(err)
	}
	if sd.Program() == prog {
		t.Fatal("sdnet must not deploy the original IR")
	}
	rejects := func(p *ir.Program) int {
		n := 0
		for _, st := range p.Parser.States {
			if st.Trans.Default == ir.StateReject {
				n++
			}
			for _, c := range st.Trans.Cases {
				if c.Next == ir.StateReject {
					n++
				}
			}
		}
		return n
	}
	if rejects(prog) == 0 {
		t.Fatal("router program should transition to reject")
	}
	if got := rejects(sd.Program()); got != 0 {
		t.Fatalf("deployed IR still has %d reject transitions", got)
	}
}

func TestSDNetTruncatedFramesStillDrop(t *testing.T) {
	// The erratum removes reject *transitions*; frames too short to
	// extract the declared headers are still dropped by the hardware.
	sd := NewSDNet(DefaultErrata())
	loadRouter(t, sd)
	short := goodFrame()[:16] // ethernet claims IPv4 follows, but it's cut off
	if res := sd.Process(short, 0, true); !res.Dropped() {
		t.Fatal("truncated frame must drop even on sdnet")
	}
}

func TestSDNetUsableCapacity(t *testing.T) {
	sd := NewSDNet(DefaultErrata())
	loadRouter(t, sd) // 1 entry installed
	installed := 1
	for i := 0; i < 2048; i++ {
		err := sd.InstallEntry(dataplane.Entry{
			Table:  "ipv4_lpm",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(0x0b000000+i*256), 32), PrefixLen: 24}},
			Action: "ipv4_forward",
			Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
		})
		if err != nil {
			break
		}
		installed++
	}
	// Declared size 1024, default errata usable fraction 9/10.
	if want := 1024 * 9 / 10; installed != want {
		t.Fatalf("usable capacity = %d, want %d (declared 1024)", installed, want)
	}

	ref := NewReference()
	loadRouter(t, ref)
	for i := 0; i < 1023; i++ {
		err := ref.InstallEntry(dataplane.Entry{
			Table:  "ipv4_lpm",
			Keys:   []dataplane.KeyValue{{Value: bitfield.New(uint64(0x0b000000+i*256), 32), PrefixLen: 24}},
			Action: "ipv4_forward",
			Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
		})
		if err != nil {
			t.Fatalf("reference entry %d: %v", i, err)
		}
	}
}

func TestSDNetRejectsWideTernary(t *testing.T) {
	const wide = `
	header h_t { bit<128> x; } struct hs { h_t h; }
	parser P(packet_in p, out hs hdr) { state start { p.extract(hdr.h); transition accept; } }
	control I(inout hs hdr, inout standard_metadata_t sm) {
	  action fwd(bit<9> port) { sm.egress_spec = port; }
	  table t { key = { hdr.h.x: ternary; } actions = { fwd; } }
	  apply { t.apply(); }
	}
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), I(), D()) main;`
	prog := mustProg(t, wide)
	sd := NewSDNet(DefaultErrata())
	if err := sd.Load(prog); err == nil {
		t.Fatal("128-bit ternary key must be rejected by the sdnet flow")
	}
	if err := NewReference().Load(prog); err != nil {
		t.Fatalf("reference must accept wide ternary keys: %v", err)
	}
}

func TestResourceEstimatesDiscriminate(t *testing.T) {
	est := func(src string) ResourceReport {
		sd := NewSDNet(DefaultErrata())
		if err := sd.Load(mustProg(t, src)); err != nil {
			t.Fatal(err)
		}
		return sd.Resources()
	}
	refl := est(p4test.Reflector)
	router := est(p4test.Router)
	fw := est(p4test.Firewall)
	if !(refl.LUTs < router.LUTs && router.LUTs < fw.LUTs) {
		t.Fatalf("LUT ordering: reflector=%d router=%d firewall=%d", refl.LUTs, router.LUTs, fw.LUTs)
	}
	if router.LUTPct <= 0 || router.BRAMs <= 0 || router.FFPct <= 0 {
		t.Fatalf("router estimate: %+v", router)
	}
	ref := NewReference()
	loadRouter(t, ref)
	if r := ref.Resources(); r.LUTs != 0 {
		t.Fatalf("reference should report no hardware cost: %+v", r)
	}
}

func TestProcessStatusCounters(t *testing.T) {
	tgt := NewReference()
	loadRouter(t, tgt)
	tgt.Process(goodFrame(), 0, false)
	tgt.Process(badVersionFrame(), 0, false)
	st := tgt.Status()
	if st["parser.accept"] != 1 || st["parser.reject"] != 1 || st["table.ipv4_lpm.hit"] != 1 {
		t.Fatalf("status: %v", st)
	}
}

func TestProcessSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the plain job checks the allocation floor")
	}
	for _, tc := range []struct {
		name string
		tgt  Target
	}{
		{"reference", NewReference()},
		{"sdnet", NewSDNet(DefaultErrata())},
		{"tofino", NewTofino(DefaultTofinoErrata())},
		{"ebpf", NewEBPF(DefaultEBPFErrata())},
		{"smartnic", NewSmartNIC(DefaultSmartNICErrata())},
	} {
		loadRouter(t, tc.tgt)
		frame := goodFrame()
		tc.tgt.Process(frame, 0, false) // warm the context pool
		allocs := testing.AllocsPerRun(200, func() {
			tc.tgt.Process(frame, 0, false)
		})
		if allocs > 2 {
			t.Errorf("%s: %v allocs/packet, want <= 2", tc.name, allocs)
		}
	}
}
