//go:build race

package tester

// raceEnabled reports whether the race detector is active: allocation-
// count assertions are skipped under race instrumentation.
const raceEnabled = true
