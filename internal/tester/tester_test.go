package tester

import (
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/core"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/target"
)

var (
	macA = packet.MAC{2, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{2, 0, 0, 0, 0, 0xb}
	gw   = packet.MAC{2, 0, 0, 0, 0xff, 1}
	ipA  = packet.IPv4Addr{10, 0, 0, 1}
	ipB  = packet.IPv4Addr{10, 0, 1, 2}
)

func newDevice(t testing.TB) *device.Device {
	return newDeviceOn(t, target.NewReference())
}

func newDeviceOn(t testing.TB, tg target.Target) *device.Device {
	t.Helper()
	prog, err := compile.Compile(p4test.Router)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := tg.InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000000, 32), PrefixLen: 8}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(1, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(device.Config{Target: tg})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func frame(payload int) []byte {
	return packet.BuildUDPv4(macA, macB, ipA, ipB, 40000, 53, make([]byte, payload))
}

func seqLoc() core.FieldLoc { return core.FieldLoc{BitOff: (14 + 20 + 8) * 8, Bits: 32} }

func TestRunMatchesSequences(t *testing.T) {
	tst := New(newDevice(t))
	rep, err := tst.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 50,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Sent != 50 || rep.Received != 50 || rep.Lost != 0 {
		t.Fatalf("report: %v", rep)
	}
	if rep.RTTP50Ns <= 0 || rep.RTTMaxNs < rep.RTTP50Ns {
		t.Fatalf("rtt stats: %+v", rep)
	}
	if rep.PerStream["s"].Received != 50 {
		t.Fatalf("per-stream: %+v", rep.PerStream["s"])
	}
}

// TestRunAcrossBackends drives the external tester against each target
// backend: the tester's view is backend-agnostic, so every stream must
// come back, with RTTs reflecting each backend's pipeline latency.
func TestRunAcrossBackends(t *testing.T) {
	for _, tc := range []struct {
		name string
		tg   target.Target
	}{
		{"reference", target.NewReference()},
		{"sdnet", target.NewSDNet(target.DefaultErrata())},
		{"tofino", target.NewTofino(target.DefaultTofinoErrata())},
		{"ebpf", target.NewEBPF(target.DefaultEBPFErrata())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tst := New(newDeviceOn(t, tc.tg))
			rep, err := tst.Run([]Stream{{
				Name: "s", Frame: frame(16), Count: 20,
				TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
			}})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass || rep.Received != 20 {
				t.Fatalf("report: %v", rep)
			}
			if rep.RTTP50Ns <= 0 {
				t.Fatalf("rtt stats: %+v", rep)
			}
		})
	}
}

// TestRunRejectsCaptureDisabledDevice: the tester scores streams from
// the capture ports; a no-capture device must fail loudly rather than
// report bogus total loss.
func TestRunRejectsCaptureDisabledDevice(t *testing.T) {
	dev := newDevice(t)
	dev.SetCaptureEnabled(false)
	if _, err := New(dev).Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 5,
		TxPort: 0, RxPort: 1, SeqLoc: seqLoc(),
	}}); err == nil {
		t.Fatal("tester must refuse a capture-disabled device")
	}
}

func TestRunDetectsLoss(t *testing.T) {
	dev := newDevice(t)
	dev.InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: 1})
	tst := New(dev)
	rep, err := tst.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 20,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Lost != 20 {
		t.Fatalf("report: %v", rep)
	}
}

func TestExpectLossStreams(t *testing.T) {
	tst := New(newDevice(t))
	bad := frame(16)
	bad[14] = 0x65 // parser reject on the reference target
	rep, err := tst.Run([]Stream{{
		Name: "bad", Frame: bad, Count: 10,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
		ExpectLoss: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("expect-loss stream should pass when dropped: %v", rep)
	}
}

func TestThroughputMeasurement(t *testing.T) {
	tst := New(newDevice(t))
	f := frame(1024 - 42)
	pps, bps, err := tst.MeasureThroughput(f, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	line := 10e9 / float64((len(f)+20)*8)
	if pps < 0.9*line || pps > 1.1*line {
		t.Fatalf("pps = %.0f, line rate %.0f", pps, line)
	}
	if bps < 9e9 || bps > 11e9 {
		t.Fatalf("bps = %.3g", bps)
	}
}

func TestUnexpectedCaptures(t *testing.T) {
	// A stream without sequence tags: every capture is "unexpected".
	tst := New(newDevice(t))
	rep, err := tst.Run([]Stream{{
		Name: "untagged", Frame: frame(16), Count: 5,
		TxPort: 0, RxPort: 1, RatePPS: 1e6,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unexpected != 5 {
		t.Fatalf("unexpected = %d", rep.Unexpected)
	}
}

func TestStreamValidation(t *testing.T) {
	tst := New(newDevice(t))
	if _, err := tst.Run([]Stream{{Name: "x", Count: 0}}); err == nil {
		t.Fatal("empty stream should fail")
	}
}
