package tester

import (
	"fmt"
	"runtime"
	"sync"

	"netdebug/internal/core"
	"netdebug/internal/device"
	"netdebug/internal/stats"
)

// Fleet runs an external-tester workload sharded across several device
// instances in parallel — the scale-out form of the baseline: each
// worker gets its own device (built by New) and a slice of every
// stream's packet budget, because a Device and its target are not safe
// for concurrent use. Shard by device, never by lock. Within a shard
// each stream is driven through the device's batched burst path
// (SendExternalBurst), so the fleet composes both scale-out forms:
// sharding across devices and batching within one.
type Fleet struct {
	// New builds one device per worker. It must return independent
	// devices (each with its own target) configured identically, and it
	// may be called concurrently from the shard goroutines.
	New func() (*device.Device, error)
	// Workers is the shard count; <= 0 means one per CPU.
	Workers int
	// PrivateArenas gives every shard its own private frame arena — the
	// pre-shared-slab behaviour, retained as the differential oracle. By
	// default the fleet resets one shared arena per run and every shard
	// reserves its extent off it concurrently, so the whole fleet stamps
	// frames into a single memory region; the differential tests prove
	// reports are byte-identical either way.
	PrivateArenas bool
	// perFrameScoring routes every shard through the retired
	// frame-at-a-time capture scorer (the batched scorer's oracle).
	perFrameScoring bool

	// Warm-run state reused across Run calls — a Fleet must not be run
	// concurrently with itself: the shared slab, the cached shard plan
	// (outer and inner backing arrays survive between runs of the same
	// shape), the per-shard testers with their scoring scratch, and the
	// result staging.
	arena   core.SharedArena
	shards  [][]Stream
	testers []*Tester
	reports []*Report
	errs    []error
}

// Run splits every stream's Count across the shards, runs the shards
// concurrently, and merges the per-shard reports deterministically.
//
// Counters (sent/received/lost/unexpected, per-stream tallies) and
// throughput (RxPPS/RxBPS) are summed across shards — the fleet's
// aggregate rate. RTT statistics are computed over the merged
// per-shard sample histograms, so p50/p99 are true percentiles of
// every frame the fleet matched (a worst-shard percentile is not a
// percentile of the fleet); max is the exact fleet maximum. Pass
// requires every shard to pass.
func (f *Fleet) Run(streams []Stream) (*Report, error) {
	if f.New == nil {
		return nil, fmt.Errorf("tester: fleet has no device factory")
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxCount, totalBytes := 0, 0
	for _, s := range streams {
		// Match the sequential Tester.Run contract: empty streams are an
		// error, not a silently passing no-op.
		if len(s.Frame) == 0 || s.Count <= 0 {
			return nil, fmt.Errorf("tester: stream %q is empty", s.Name)
		}
		if s.Count > maxCount {
			maxCount = s.Count
		}
		totalBytes += s.Count * len(s.Frame)
	}
	if workers > maxCount {
		workers = maxCount
	}
	if workers < 1 {
		workers = 1
	}

	// Rebuild the shard plan into cached backing arrays: when the stream
	// set and worker count keep their shape between runs (the steady
	// state of a benchmark or a resident service), planning a warm run
	// allocates nothing.
	for len(f.shards) < workers {
		f.shards = append(f.shards, nil)
	}
	shards := f.shards[:workers]
	for w := 0; w < workers; w++ {
		shard := shards[w][:0]
		for _, s := range streams {
			// Spread Count as evenly as possible; early shards take the
			// remainder.
			c := s.Count / workers
			if w < s.Count%workers {
				c++
			}
			if c == 0 {
				continue
			}
			s.Count = c
			shard = append(shard, s)
		}
		shards[w] = shard
	}

	// One slab for the whole fleet: every shard's Tester reserves its
	// contiguous extent off it concurrently (atomic bump inside
	// SharedArena), so all shards stamp frames into one memory region.
	// The shard sums never exceed totalBytes, so every reservation fits.
	if !f.PrivateArenas {
		f.arena.Reset(totalBytes)
	}
	for len(f.testers) < workers {
		f.testers = append(f.testers, New(nil))
	}
	if cap(f.reports) < workers {
		f.reports = make([]*Report, workers)
		f.errs = make([]error, workers)
	}
	reports := f.reports[:workers]
	errs := f.errs[:workers]
	for w := range reports {
		reports[w], errs[w] = nil, nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev, err := f.New()
			if err != nil {
				errs[w] = fmt.Errorf("tester: fleet shard %d: %w", w, err)
				return
			}
			t := f.testers[w]
			t.dev = dev
			t.perFrameScoring = f.perFrameScoring
			if f.PrivateArenas {
				t.UseArena(nil)
			} else {
				t.UseArena(&f.arena)
			}
			reports[w], errs[w] = t.Run(shards[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeReports(reports), nil
}

// mergeReports aggregates per-shard reports (nil entries are skipped).
// RTT statistics come from the merged sample histograms: the aggregate
// p50/p99 are percentiles of the union of every shard's matched
// frames. Shards without a sample histogram (reports not produced by
// Tester.Run) fall back to the conservative worst-shard bound.
func mergeReports(reports []*Report) *Report {
	agg := &Report{PerStream: make(map[string]StreamResult), Pass: true}
	merged := stats.NewHistogram()
	var rttWeighted float64
	allSampled := true
	for _, r := range reports {
		if r == nil {
			continue
		}
		agg.Sent += r.Sent
		agg.Received += r.Received
		agg.Lost += r.Lost
		agg.Unexpected += r.Unexpected
		agg.RxPPS += r.RxPPS
		agg.RxBPS += r.RxBPS
		rttWeighted += float64(r.RTTMeanNs) * float64(r.Received)
		if r.rtt != nil {
			merged.Merge(r.rtt)
		} else {
			allSampled = false
		}
		if r.RTTP50Ns > agg.RTTP50Ns {
			agg.RTTP50Ns = r.RTTP50Ns
		}
		if r.RTTP99Ns > agg.RTTP99Ns {
			agg.RTTP99Ns = r.RTTP99Ns
		}
		if r.RTTMaxNs > agg.RTTMaxNs {
			agg.RTTMaxNs = r.RTTMaxNs
		}
		for name, sr := range r.PerStream {
			cur, seen := agg.PerStream[name]
			if !seen {
				cur.Pass = true
			}
			cur.Sent += sr.Sent
			cur.Received += sr.Received
			cur.Lost += sr.Lost
			cur.Pass = cur.Pass && sr.Pass
			agg.PerStream[name] = cur
		}
		agg.Pass = agg.Pass && r.Pass
	}
	if allSampled && merged.Count() > 0 {
		agg.RTTMeanNs = merged.Mean().Nanoseconds()
		agg.RTTP50Ns = merged.Quantile(0.5).Nanoseconds()
		agg.RTTP99Ns = merged.Quantile(0.99).Nanoseconds()
		agg.RTTMaxNs = merged.Max().Nanoseconds() // max is still max: exact
		agg.rtt = merged
	} else if agg.Received > 0 {
		agg.RTTMeanNs = int64(rttWeighted / float64(agg.Received))
	}
	return agg
}
