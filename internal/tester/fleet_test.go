package tester

import (
	"sync/atomic"
	"testing"
	"time"

	"netdebug/internal/device"
	"netdebug/internal/stats"
)

// TestMergeReportsTrueRTTPercentiles: a worst-shard p50 is not a
// percentile of the fleet. With one fast shard (100 samples near
// 100ns) and one slow shard (100 samples near 10µs), the fleet p50
// must land between the two modes — not at the slow shard's p50 — and
// p99/max must reflect the slow tail.
func TestMergeReportsTrueRTTPercentiles(t *testing.T) {
	shard := func(ns int64, n int) *Report {
		h := stats.NewHistogram()
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(ns + int64(i)))
		}
		return &Report{
			Received:  uint64(n),
			RTTMeanNs: h.Mean().Nanoseconds(),
			RTTP50Ns:  h.Quantile(0.5).Nanoseconds(),
			RTTP99Ns:  h.Quantile(0.99).Nanoseconds(),
			RTTMaxNs:  h.Max().Nanoseconds(),
			rtt:       h,
			Pass:      true,
			PerStream: map[string]StreamResult{},
		}
	}
	fast, slow := shard(100, 100), shard(10000, 100)
	agg := mergeReports([]*Report{fast, slow})
	// Worst-shard aggregation would report p50 ~= 10000; the true p50
	// of the combined 200 samples sits at the top of the fast mode.
	if agg.RTTP50Ns >= slow.RTTP50Ns {
		t.Fatalf("fleet p50 = %dns is the worst shard's, not a fleet percentile", agg.RTTP50Ns)
	}
	if agg.RTTP50Ns < 90 || agg.RTTP50Ns > 300 {
		t.Fatalf("fleet p50 = %dns, want ~the fast mode (100ns)", agg.RTTP50Ns)
	}
	if agg.RTTP99Ns < 9000 {
		t.Fatalf("fleet p99 = %dns must reflect the slow tail", agg.RTTP99Ns)
	}
	if agg.RTTMaxNs != slow.RTTMaxNs {
		t.Fatalf("fleet max = %d, want the exact max %d", agg.RTTMaxNs, slow.RTTMaxNs)
	}
	if agg.RTTMeanNs <= fast.RTTMeanNs || agg.RTTMeanNs >= slow.RTTMeanNs {
		t.Fatalf("fleet mean = %d, want between shard means %d and %d",
			agg.RTTMeanNs, fast.RTTMeanNs, slow.RTTMeanNs)
	}

	// A shard without samples falls back to the conservative bound.
	bare := &Report{Received: 10, RTTMeanNs: 50, RTTP50Ns: 42, Pass: true,
		PerStream: map[string]StreamResult{}}
	agg = mergeReports([]*Report{fast, bare})
	if agg.RTTP50Ns < fast.RTTP50Ns {
		t.Fatalf("fallback p50 = %d, want the worst-shard bound", agg.RTTP50Ns)
	}
}

func TestFleetAggregatesShards(t *testing.T) {
	fleet := &Fleet{
		New:     func() (*device.Device, error) { return newDevice(t), nil },
		Workers: 4,
	}
	rep, err := fleet.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 50,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Sent != 50 || rep.Received != 50 || rep.Lost != 0 {
		t.Fatalf("aggregate: %v", rep)
	}
	if sr := rep.PerStream["s"]; sr.Sent != 50 || sr.Received != 50 || !sr.Pass {
		t.Fatalf("per-stream: %+v", sr)
	}
	if rep.RTTP50Ns <= 0 || rep.RTTMeanNs <= 0 {
		t.Fatalf("rtt stats: %+v", rep)
	}
	// Four independent 10G devices: aggregate rate is the sum, so it can
	// exceed a single wire's packet rate.
	single := New(newDevice(t))
	srep, err := single.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 50,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RxPPS <= srep.RxPPS {
		t.Fatalf("fleet rate %.0f pps should exceed single-device %.0f pps", rep.RxPPS, srep.RxPPS)
	}
}

func TestFleetDetectsFailuresInAnyShard(t *testing.T) {
	var built atomic.Int32 // the factory runs concurrently, one call per shard
	fleet := &Fleet{
		New: func() (*device.Device, error) {
			d := newDevice(t)
			// Break the egress queue on every shard device: total loss.
			d.InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: 1})
			built.Add(1)
			return d, nil
		},
		Workers: 3,
	}
	rep, err := fleet.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 9,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Lost != 9 {
		t.Fatalf("aggregate: %v", rep)
	}
	if built.Load() != 3 {
		t.Fatalf("device factory called %d times, want 3", built.Load())
	}
}

func TestFleetRejectsEmptyStreams(t *testing.T) {
	fleet := &Fleet{New: func() (*device.Device, error) { return newDevice(t), nil }, Workers: 2}
	if _, err := fleet.Run([]Stream{{Name: "x", Frame: frame(16), Count: 0}}); err == nil {
		t.Fatal("zero-count stream must error, as in Tester.Run")
	}
	if _, err := fleet.Run([]Stream{{Name: "x", Count: 5}}); err == nil {
		t.Fatal("empty frame must error")
	}
}

func TestFleetMoreWorkersThanPackets(t *testing.T) {
	fleet := &Fleet{
		New:     func() (*device.Device, error) { return newDevice(t), nil },
		Workers: 64,
	}
	rep, err := fleet.Run([]Stream{{
		Name: "tiny", Frame: frame(16), Count: 3,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Sent != 3 || rep.Received != 3 {
		t.Fatalf("aggregate: %v", rep)
	}
}
