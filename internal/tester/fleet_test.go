package tester

import (
	"sync/atomic"
	"testing"

	"netdebug/internal/device"
)

func TestFleetAggregatesShards(t *testing.T) {
	fleet := &Fleet{
		New:     func() (*device.Device, error) { return newDevice(t), nil },
		Workers: 4,
	}
	rep, err := fleet.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 50,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Sent != 50 || rep.Received != 50 || rep.Lost != 0 {
		t.Fatalf("aggregate: %v", rep)
	}
	if sr := rep.PerStream["s"]; sr.Sent != 50 || sr.Received != 50 || !sr.Pass {
		t.Fatalf("per-stream: %+v", sr)
	}
	if rep.RTTP50Ns <= 0 || rep.RTTMeanNs <= 0 {
		t.Fatalf("rtt stats: %+v", rep)
	}
	// Four independent 10G devices: aggregate rate is the sum, so it can
	// exceed a single wire's packet rate.
	single := New(newDevice(t))
	srep, err := single.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 50,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RxPPS <= srep.RxPPS {
		t.Fatalf("fleet rate %.0f pps should exceed single-device %.0f pps", rep.RxPPS, srep.RxPPS)
	}
}

func TestFleetDetectsFailuresInAnyShard(t *testing.T) {
	var built atomic.Int32 // the factory runs concurrently, one call per shard
	fleet := &Fleet{
		New: func() (*device.Device, error) {
			d := newDevice(t)
			// Break the egress queue on every shard device: total loss.
			d.InjectFault(device.Fault{Kind: device.FaultQueueStuck, Port: 1})
			built.Add(1)
			return d, nil
		},
		Workers: 3,
	}
	rep, err := fleet.Run([]Stream{{
		Name: "s", Frame: frame(16), Count: 9,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Lost != 9 {
		t.Fatalf("aggregate: %v", rep)
	}
	if built.Load() != 3 {
		t.Fatalf("device factory called %d times, want 3", built.Load())
	}
}

func TestFleetRejectsEmptyStreams(t *testing.T) {
	fleet := &Fleet{New: func() (*device.Device, error) { return newDevice(t), nil }, Workers: 2}
	if _, err := fleet.Run([]Stream{{Name: "x", Frame: frame(16), Count: 0}}); err == nil {
		t.Fatal("zero-count stream must error, as in Tester.Run")
	}
	if _, err := fleet.Run([]Stream{{Name: "x", Count: 5}}); err == nil {
		t.Fatal("empty frame must error")
	}
}

func TestFleetMoreWorkersThanPackets(t *testing.T) {
	fleet := &Fleet{
		New:     func() (*device.Device, error) { return newDevice(t), nil },
		Workers: 64,
	}
	rep, err := fleet.Run([]Stream{{
		Name: "tiny", Frame: frame(16), Count: 3,
		TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Sent != 3 || rep.Received != 3 {
		t.Fatalf("aggregate: %v", rep)
	}
}
