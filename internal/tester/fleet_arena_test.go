package tester

import (
	"reflect"
	"sync/atomic"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/device"
	"netdebug/internal/packet"
)

// newFleetDevice is newDevice plus a second route, so the differential
// workload's untagged stream egresses on its own port: streams sharing
// one egress line are serialized burst-after-burst in virtual time, and
// a later burst starting at the shared start time would tail-drop
// against the queue model instead of scoring as unexpected captures.
func newFleetDevice(t testing.TB) *device.Device {
	dev := newDevice(t)
	if err := dev.Target().InstallEntry(dataplane.Entry{
		Table:  "ipv4_lpm",
		Keys:   []dataplane.KeyValue{{Value: bitfield.New(0x0a000200, 32), PrefixLen: 24}},
		Action: "ipv4_forward",
		Args:   []bitfield.Value{bitfield.FromBytes(gw[:]), bitfield.New(2, 9)},
	}); err != nil {
		t.Fatal(err)
	}
	return dev
}

// mixedStreams is the differential workload: a tagged stream that must
// come back, a parser-rejected stream (expected loss), and an untagged
// stream whose captures score as unexpected — together they exercise the
// received, lost, and unexpected paths of both scorers.
func mixedStreams(count int) []Stream {
	bad := frame(16)
	bad[14] = 0x65 // not IPv4: the parser rejects it, so it never egresses
	toPort2 := packet.BuildUDPv4(macA, macB, ipA, packet.IPv4Addr{10, 0, 2, 9},
		40000, 53, make([]byte, 16))
	return []Stream{
		{Name: "fwd", Frame: frame(16), Count: count,
			TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc()},
		{Name: "rejected", Frame: bad, Count: count / 4,
			TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(), ExpectLoss: true},
		{Name: "untagged", Frame: toPort2, Count: count / 8,
			TxPort: 3, RxPort: 2, RatePPS: 1e6},
	}
}

// TestTesterBatchedScoringMatchesPerFrame: the block scorer (dense
// sent-frame table, batched histogram/meter updates) produces a report
// byte-identical to the retired frame-at-a-time scorer on the same
// workload — counters, per-stream tallies, RTT percentiles, and rates.
func TestTesterBatchedScoringMatchesPerFrame(t *testing.T) {
	streams := mixedStreams(600) // > one 512-frame scoring block

	oracle := New(newFleetDevice(t))
	oracle.perFrameScoring = true
	want, err := oracle.Run(streams)
	if err != nil {
		t.Fatal(err)
	}

	batched := New(newFleetDevice(t))
	got, err := batched.Run(streams)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batched scorer diverges from per-frame oracle:\n got %+v\nwant %+v", got, want)
	}
	if want.Received == 0 || want.Lost == 0 || want.Unexpected == 0 {
		t.Fatalf("workload did not exercise all scoring paths: %+v", want)
	}
}

// TestFleetSharedArenaMatchesPrivate is the shared-arena differential:
// a fleet whose shards carve extents off one shared slab reports
// byte-identically to a fleet where every shard keeps a private arena,
// at 1, 2, and 8 shards (run under -race this also exercises the
// concurrent extent reservations).
func TestFleetSharedArenaMatchesPrivate(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		streams := mixedStreams(240)

		private := &Fleet{
			New:           func() (*device.Device, error) { return newFleetDevice(t), nil },
			Workers:       shards,
			PrivateArenas: true,
		}
		want, err := private.Run(streams)
		if err != nil {
			t.Fatalf("%d shards (private): %v", shards, err)
		}

		shared := &Fleet{
			New:     func() (*device.Device, error) { return newFleetDevice(t), nil },
			Workers: shards,
		}
		got, err := shared.Run(streams)
		if err != nil {
			t.Fatalf("%d shards (shared): %v", shards, err)
		}

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d shards: shared-arena report diverges from private-arena oracle:\n got %+v\nwant %+v",
				shards, got, want)
		}
		if shared.arena.Used() == 0 {
			t.Fatalf("%d shards: shared arena unused — shards fell back to private slabs", shards)
		}
		if want.Received == 0 || want.Lost == 0 {
			t.Fatalf("%d shards: workload did not exercise loss: %+v", shards, want)
		}
	}
}

// TestFleetWarmRunBookkeepingAllocs: a warm Fleet.Run reuses its shard
// plan, testers, scoring scratch, and the shared slab, so per-run
// bookkeeping allocations must not scale with the frame count (frame
// data itself lives in the warm slab).
func TestFleetWarmRunBookkeepingAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation floor not meaningful under the race detector")
	}
	const workers = 2
	devs := make([]*device.Device, workers)
	for i := range devs {
		devs[i] = newDevice(t)
	}
	var next atomic.Int64
	fleet := &Fleet{
		New: func() (*device.Device, error) {
			return devs[next.Add(1)%workers], nil
		},
		Workers: workers,
	}
	run := func(count int) {
		if _, err := fleet.Run([]Stream{{
			Name: "s", Frame: frame(16), Count: count,
			TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	run(1024) // warm the slab, sent table, and capture rings at max size
	small := testing.AllocsPerRun(10, func() { run(128) })
	big := testing.AllocsPerRun(10, func() { run(1024) })
	// Constant per-run cost (report, merge histogram, goroutines) is
	// fine; anything per-frame would add ~896 allocs between the sizes.
	if big-small > 64 {
		t.Fatalf("warm Fleet.Run bookkeeping scales with frames: %.1f allocs at 128, %.1f at 1024",
			small, big)
	}
	if big > 256 {
		t.Fatalf("warm Fleet.Run allocates %.1f per run, want small constant bookkeeping", big)
	}
}

// BenchmarkFleetAggregateMpps drives N simulated devices from one
// generator slab and reports the fleet's aggregate packet rate: 8192
// frames per run, split across the shards. benchgate pins the
// single-device case and, on runners with >= 8 procs, enforces the
// 1-shard : 8-shard aggregate scaling ratio.
func BenchmarkFleetAggregateMpps(b *testing.B) {
	for _, nDev := range []int{1, 2, 4, 8} {
		b.Run(deviceLabel(nDev), func(b *testing.B) {
			devs := make([]*device.Device, nDev)
			for i := range devs {
				devs[i] = newDevice(b)
			}
			var next atomic.Int64
			fleet := &Fleet{
				New: func() (*device.Device, error) {
					return devs[next.Add(1)%int64(nDev)], nil
				},
				Workers: nDev,
			}
			const frames = 8192
			streams := []Stream{{
				Name: "s", Frame: frame(16), Count: frames,
				TxPort: 0, RxPort: 1, RatePPS: 1e6, SeqLoc: seqLoc(),
			}}
			// One warm run so the steady state is measured: slab, shard
			// plan, capture rings, and scoring scratch all at full size.
			if _, err := fleet.Run(streams); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(streams)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Received != frames {
					b.Fatalf("received %d of %d", rep.Received, frames)
				}
			}
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(b.N)*frames/secs/1e6, "Mpps")
			}
		})
	}
}

func deviceLabel(n int) string {
	return "devices" + string(rune('0'+n))
}
