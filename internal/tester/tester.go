// Package tester implements the external network tester baseline (in the
// style of OSNT): a traffic generator and capture engine attached to the
// device's external ports only.
//
// Its limitation is the paper's point of comparison: the tester sees the
// device strictly through its network interfaces. It can send and capture
// frames, measure throughput and latency from the outside, and observe
// that packets did not come back — but it cannot inject below the MACs,
// cannot read internal status registers, and cannot tell a parser drop
// from an interface fault from a stuck queue: everything is "packet lost".
package tester

import (
	"fmt"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/core"
	"netdebug/internal/device"
	"netdebug/internal/stats"
)

// Stream describes one external traffic stream.
type Stream struct {
	Name string
	// Frame is the template frame; the sequence tag (SeqLoc) is stamped
	// per packet when valid.
	Frame  []byte
	Count  int
	TxPort int
	// RxPort is where the stream is expected to emerge.
	RxPort int
	// RatePPS paces transmission; zero means line rate.
	RatePPS float64
	// SeqLoc is the field used to match captures to transmissions.
	SeqLoc core.FieldLoc
	// ExpectLoss marks streams that should NOT come back.
	ExpectLoss bool
}

// Report is the tester's external view of a run.
type Report struct {
	Sent     uint64
	Received uint64
	// Lost counts sent-but-never-captured frames. The tester cannot say
	// why they were lost.
	Lost uint64
	// Unexpected counts captures that matched no outstanding transmission.
	Unexpected uint64
	// RTT statistics (nanoseconds) over matched frames: measured from TX
	// start to RX capture — necessarily including wire and queueing time
	// the internal checker does not charge.
	RTTMeanNs, RTTP50Ns, RTTP99Ns, RTTMaxNs int64
	RxPPS, RxBPS                            float64
	// PerStream holds per-stream verdicts.
	PerStream map[string]StreamResult
	Pass      bool
	// rtt retains the full RTT sample histogram so Fleet.Run can merge
	// per-shard samples and compute true aggregate percentiles rather
	// than a worst-shard approximation.
	rtt *stats.Histogram
}

// StreamResult is one stream's outcome.
type StreamResult struct {
	Sent, Received, Lost uint64
	Pass                 bool
}

// String renders a summary.
func (r *Report) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: sent=%d received=%d lost=%d p99rtt=%dns",
		verdict, r.Sent, r.Received, r.Lost, r.RTTP99Ns)
}

// Tester drives streams against a device from outside.
type Tester struct {
	dev *device.Device
	// arena stamps stream frames without a per-frame allocation; the
	// frames of a run are valid until the next Run on this tester.
	// UseArena rebinds it to extents of a fleet-shared slab.
	arena  core.FrameArena
	shared *core.SharedArena

	// perFrameScoring selects the retired frame-at-a-time capture
	// scorer (map-keyed outstanding set, per-frame histogram and meter
	// updates) — the equality oracle for the batched block scorer.
	perFrameScoring bool

	// Batched-scoring scratch reused across runs, so warm runs add no
	// per-frame bookkeeping allocations: the dense sent-frame table
	// (indexed by sequence tag), the per-block RTT staging, per-stream
	// tallies, and the deduped RX port list.
	sent    []sentFrame
	rtts    []time.Duration
	recv    []uint64
	lostCnt []uint64
	rxPorts []int
}

// New attaches a tester to the device's external ports.
func New(dev *device.Device) *Tester { return &Tester{dev: dev} }

// UseArena makes the tester reserve each run's frame storage as one
// contiguous extent off the fleet-shared arena instead of its private
// slab (nil returns it to private mode). Fleet.Run wires this for every
// shard so the whole fleet stamps frames into one memory region.
func (t *Tester) UseArena(sa *core.SharedArena) { t.shared = sa }

type sentFrame struct {
	stream  int32 // index into the run's streams; -1 = untagged slot
	matched bool
	at      time.Duration
}

// scoreBlock is the capture-scoring block size, mirroring the injection
// side's batching (device burst path, core's maxInjectBatch): captures
// are matched and their RTTs staged per block, then folded into the
// histogram and rate meter with one batched update each.
const scoreBlock = 512

// Run transmits every stream and scores the captures. Frames are sent in
// virtual time; captures are drained from each stream's RxPort afterwards
// (ports in first-declared order) and scored in 512-frame blocks.
func (t *Tester) Run(streams []Stream) (*Report, error) {
	if t.perFrameScoring {
		return t.runPerFrame(streams)
	}
	// The tester matches RX frames exclusively through the device's
	// capture ports; with capture disabled every stream would score as
	// total loss, so fail loudly instead.
	if !t.dev.CaptureEnabled() {
		return nil, fmt.Errorf("tester: device has frame capture disabled; the external tester needs capture ports")
	}
	rep := &Report{PerStream: make(map[string]StreamResult, len(streams))}
	lat := stats.NewHistogram()
	var meter stats.Meter

	totalBytes, totalFrames := 0, 0
	for _, s := range streams {
		if len(s.Frame) == 0 || s.Count <= 0 {
			return nil, fmt.Errorf("tester: stream %q is empty", s.Name)
		}
		totalBytes += s.Count * len(s.Frame)
		totalFrames += s.Count
	}
	t.shared.Reserve(&t.arena, totalBytes, totalFrames)

	// The dense sent-frame table replaces the per-frame map the retired
	// scorer keeps: sequence tags are 0..totalFrames-1 by construction,
	// so registration and lookup are a bounds-checked index, and the
	// table is scratch reused across runs.
	if cap(t.sent) < totalFrames {
		t.sent = make([]sentFrame, totalFrames)
	}
	sent := t.sent[:totalFrames]
	for i := range sent {
		sent[i] = sentFrame{stream: -1}
	}
	if cap(t.recv) < len(streams) {
		t.recv = make([]uint64, len(streams))
		t.lostCnt = make([]uint64, len(streams))
	}
	recv := t.recv[:len(streams)]
	lostCnt := t.lostCnt[:len(streams)]
	for i := range recv {
		recv[i], lostCnt[i] = 0, 0
	}

	rxPorts := t.rxPorts[:0]
	start := t.dev.Now()
	gid := uint64(0)
	for si := range streams {
		s := &streams[si]
		rate := s.RatePPS
		if rate <= 0 {
			rate = 10e9 / (float64(len(s.Frame)+20) * 8)
		}
		interval := time.Duration(1e9 / rate)
		seenPort := false
		for _, p := range rxPorts {
			if p == s.RxPort {
				seenPort = true
				break
			}
		}
		if !seenPort {
			rxPorts = append(rxPorts, s.RxPort)
		}
		// Stamp the whole stream up front in the arena, then hand it to
		// the device as one burst: the batched data-plane path amortizes
		// per-packet overhead while producing the same virtual-time
		// schedule as one SendExternal call per frame, and the arena
		// kills the per-frame template copy — frames flow stamped slab →
		// burst → capture ring without an allocation per packet.
		streamStart := t.arena.Mark()
		for i := 0; i < s.Count; i++ {
			frame := t.arena.Frame(len(s.Frame))
			copy(frame, s.Frame)
			if s.SeqLoc.Valid() {
				if err := bitfield.Inject(frame, s.SeqLoc.BitOff, s.SeqLoc.Bits,
					bitfield.New(gid, s.SeqLoc.Bits)); err != nil {
					return nil, fmt.Errorf("tester: stream %q seq tag: %w", s.Name, err)
				}
				sent[gid] = sentFrame{stream: int32(si), at: start + time.Duration(i)*interval}
			}
			gid++
		}
		if err := t.dev.SendExternalBurst(s.TxPort, t.arena.Since(streamStart), start, interval); err != nil {
			return nil, err
		}
		rep.Sent += uint64(s.Count)
		sr := rep.PerStream[s.Name]
		sr.Sent += uint64(s.Count)
		rep.PerStream[s.Name] = sr
	}
	t.rxPorts = rxPorts

	// Drain captures on every RX port and match sequence tags, scoring
	// in blocks: RTTs are staged per block and batch-observed, stream
	// tallies accumulate in dense scratch (folded into the report map
	// once, after the drain), and the rate meter is updated once per
	// block. Captured frames are borrowed from the device's capture
	// ring, so each port's segments go back via ReleaseCaptures as soon
	// as its drain completes.
	rtts := t.rtts[:0]
	for _, port := range rxPorts {
		caps := t.dev.Captures(port)
		for blockStart := 0; blockStart < len(caps); blockStart += scoreBlock {
			block := caps[blockStart:]
			if len(block) > scoreBlock {
				block = block[:scoreBlock]
			}
			rtts = rtts[:0]
			var events, bytes uint64
			var first, last time.Duration
			for ci := range block {
				cf := &block[ci]
				rep.Received++
				if events == 0 {
					first = cf.At
				}
				if cf.At > last {
					last = cf.At
				}
				events++
				bytes += uint64(len(cf.Data))
				matched := false
				for si := range streams {
					s := &streams[si]
					if s.RxPort != port || !s.SeqLoc.Valid() {
						continue
					}
					v, err := bitfield.Extract(cf.Data, s.SeqLoc.BitOff, s.SeqLoc.Bits)
					if err != nil {
						continue
					}
					seq := v.Uint64()
					if seq >= uint64(len(sent)) {
						continue
					}
					sf := &sent[seq]
					if sf.stream < 0 || sf.matched || streams[sf.stream].Name != s.Name {
						continue
					}
					sf.matched = true
					rtts = append(rtts, cf.At-sf.at)
					recv[si]++
					matched = true
					break
				}
				if !matched {
					rep.Unexpected++
				}
			}
			lat.ObserveBatch(rtts)
			meter.RecordBlock(first, last, events, bytes)
		}
		t.dev.ReleaseCaptures(port)
	}
	t.rtts = rtts[:0]

	for i := range sent {
		sf := &sent[i]
		if sf.stream < 0 || sf.matched {
			continue
		}
		rep.Lost++
		lostCnt[sf.stream]++
	}
	for si := range streams {
		if recv[si] == 0 && lostCnt[si] == 0 {
			continue
		}
		sr := rep.PerStream[streams[si].Name]
		sr.Received += recv[si]
		sr.Lost += lostCnt[si]
		rep.PerStream[streams[si].Name] = sr
	}

	t.finishReport(rep, streams, lat, &meter)
	return rep, nil
}

// runPerFrame is the retired frame-at-a-time scorer, kept verbatim (map
// outstanding set, per-capture histogram/meter updates) as the equality
// oracle for Run's batched block scorer: the differential tests assert
// byte-identical reports from both paths.
func (t *Tester) runPerFrame(streams []Stream) (*Report, error) {
	if !t.dev.CaptureEnabled() {
		return nil, fmt.Errorf("tester: device has frame capture disabled; the external tester needs capture ports")
	}
	rep := &Report{PerStream: make(map[string]StreamResult)}
	lat := stats.NewHistogram()
	var meter stats.Meter

	outstanding := map[uint64]struct {
		stream string
		at     time.Duration
	}{}
	gid := uint64(0)
	start := t.dev.Now()
	var rxPorts []int

	totalBytes, totalFrames := 0, 0
	for _, s := range streams {
		if len(s.Frame) == 0 || s.Count <= 0 {
			return nil, fmt.Errorf("tester: stream %q is empty", s.Name)
		}
		totalBytes += s.Count * len(s.Frame)
		totalFrames += s.Count
	}
	t.shared.Reserve(&t.arena, totalBytes, totalFrames)

	for _, s := range streams {
		rate := s.RatePPS
		if rate <= 0 {
			rate = 10e9 / (float64(len(s.Frame)+20) * 8)
		}
		interval := time.Duration(1e9 / rate)
		seenPort := false
		for _, p := range rxPorts {
			if p == s.RxPort {
				seenPort = true
				break
			}
		}
		if !seenPort {
			rxPorts = append(rxPorts, s.RxPort)
		}
		streamStart := t.arena.Mark()
		for i := 0; i < s.Count; i++ {
			frame := t.arena.Frame(len(s.Frame))
			copy(frame, s.Frame)
			if s.SeqLoc.Valid() {
				if err := bitfield.Inject(frame, s.SeqLoc.BitOff, s.SeqLoc.Bits,
					bitfield.New(gid, s.SeqLoc.Bits)); err != nil {
					return nil, fmt.Errorf("tester: stream %q seq tag: %w", s.Name, err)
				}
				outstanding[gid] = struct {
					stream string
					at     time.Duration
				}{stream: s.Name, at: start + time.Duration(i)*interval}
			}
			gid++
		}
		if err := t.dev.SendExternalBurst(s.TxPort, t.arena.Since(streamStart), start, interval); err != nil {
			return nil, err
		}
		rep.Sent += uint64(s.Count)
		sr := rep.PerStream[s.Name]
		sr.Sent += uint64(s.Count)
		rep.PerStream[s.Name] = sr
	}

	for _, port := range rxPorts {
		for _, cf := range t.dev.Captures(port) {
			rep.Received++
			meter.Record(cf.At, len(cf.Data))
			matched := false
			for _, s := range streams {
				if s.RxPort != port || !s.SeqLoc.Valid() {
					continue
				}
				v, err := bitfield.Extract(cf.Data, s.SeqLoc.BitOff, s.SeqLoc.Bits)
				if err != nil {
					continue
				}
				sf, ok := outstanding[v.Uint64()]
				if !ok || sf.stream != s.Name {
					continue
				}
				delete(outstanding, v.Uint64())
				lat.Observe(cf.At - sf.at)
				sr := rep.PerStream[s.Name]
				sr.Received++
				rep.PerStream[s.Name] = sr
				matched = true
				break
			}
			if !matched {
				rep.Unexpected++
			}
		}
		t.dev.ReleaseCaptures(port)
	}

	for _, sf := range outstanding {
		rep.Lost++
		sr := rep.PerStream[sf.stream]
		sr.Lost++
		rep.PerStream[sf.stream] = sr
	}

	t.finishReport(rep, streams, lat, &meter)
	return rep, nil
}

// finishReport computes per-stream verdicts and the RTT/rate summary —
// shared by the batched scorer and the per-frame oracle.
func (t *Tester) finishReport(rep *Report, streams []Stream, lat *stats.Histogram, meter *stats.Meter) {
	rep.Pass = true
	for _, s := range streams {
		sr := rep.PerStream[s.Name]
		if s.ExpectLoss {
			sr.Pass = sr.Received == 0
		} else {
			sr.Pass = sr.Lost == 0 && sr.Received == sr.Sent
		}
		if !sr.Pass {
			rep.Pass = false
		}
		rep.PerStream[s.Name] = sr
	}

	rep.RTTMeanNs = lat.Mean().Nanoseconds()
	rep.RTTP50Ns = lat.Quantile(0.5).Nanoseconds()
	rep.RTTP99Ns = lat.Quantile(0.99).Nanoseconds()
	rep.RTTMaxNs = lat.Max().Nanoseconds()
	rep.rtt = lat
	snap := meter.Snapshot()
	rep.RxPPS = snap.PPS
	rep.RxBPS = snap.BPS
}

// MeasureThroughput floods the device at line rate from txPort and
// reports the received rate on rxPort — the performance test an external
// tester can run.
func (t *Tester) MeasureThroughput(frame []byte, count, txPort, rxPort int) (pps, bps float64, err error) {
	rep, err := t.Run([]Stream{{
		Name:  "throughput",
		Frame: frame, Count: count, TxPort: txPort, RxPort: rxPort,
	}})
	if err != nil {
		return 0, 0, err
	}
	return rep.RxPPS, rep.RxBPS, nil
}
