// Package tester implements the external network tester baseline (in the
// style of OSNT): a traffic generator and capture engine attached to the
// device's external ports only.
//
// Its limitation is the paper's point of comparison: the tester sees the
// device strictly through its network interfaces. It can send and capture
// frames, measure throughput and latency from the outside, and observe
// that packets did not come back — but it cannot inject below the MACs,
// cannot read internal status registers, and cannot tell a parser drop
// from an interface fault from a stuck queue: everything is "packet lost".
package tester

import (
	"fmt"
	"time"

	"netdebug/internal/bitfield"
	"netdebug/internal/core"
	"netdebug/internal/device"
	"netdebug/internal/stats"
)

// Stream describes one external traffic stream.
type Stream struct {
	Name string
	// Frame is the template frame; the sequence tag (SeqLoc) is stamped
	// per packet when valid.
	Frame  []byte
	Count  int
	TxPort int
	// RxPort is where the stream is expected to emerge.
	RxPort int
	// RatePPS paces transmission; zero means line rate.
	RatePPS float64
	// SeqLoc is the field used to match captures to transmissions.
	SeqLoc core.FieldLoc
	// ExpectLoss marks streams that should NOT come back.
	ExpectLoss bool
}

// Report is the tester's external view of a run.
type Report struct {
	Sent     uint64
	Received uint64
	// Lost counts sent-but-never-captured frames. The tester cannot say
	// why they were lost.
	Lost uint64
	// Unexpected counts captures that matched no outstanding transmission.
	Unexpected uint64
	// RTT statistics (nanoseconds) over matched frames: measured from TX
	// start to RX capture — necessarily including wire and queueing time
	// the internal checker does not charge.
	RTTMeanNs, RTTP50Ns, RTTP99Ns, RTTMaxNs int64
	RxPPS, RxBPS                            float64
	// PerStream holds per-stream verdicts.
	PerStream map[string]StreamResult
	Pass      bool
	// rtt retains the full RTT sample histogram so Fleet.Run can merge
	// per-shard samples and compute true aggregate percentiles rather
	// than a worst-shard approximation.
	rtt *stats.Histogram
}

// StreamResult is one stream's outcome.
type StreamResult struct {
	Sent, Received, Lost uint64
	Pass                 bool
}

// String renders a summary.
func (r *Report) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: sent=%d received=%d lost=%d p99rtt=%dns",
		verdict, r.Sent, r.Received, r.Lost, r.RTTP99Ns)
}

// Tester drives streams against a device from outside.
type Tester struct {
	dev *device.Device
	// arena stamps stream frames without a per-frame allocation; the
	// frames of a run are valid until the next Run on this tester.
	arena core.FrameArena
}

// New attaches a tester to the device's external ports.
func New(dev *device.Device) *Tester { return &Tester{dev: dev} }

type sentFrame struct {
	stream string
	at     time.Duration
}

// Run transmits every stream and scores the captures. Frames are sent in
// virtual time; captures are drained from each stream's RxPort afterwards.
func (t *Tester) Run(streams []Stream) (*Report, error) {
	// The tester matches RX frames exclusively through the device's
	// capture ports; with capture disabled every stream would score as
	// total loss, so fail loudly instead.
	if !t.dev.CaptureEnabled() {
		return nil, fmt.Errorf("tester: device has frame capture disabled; the external tester needs capture ports")
	}
	rep := &Report{PerStream: make(map[string]StreamResult)}
	lat := stats.NewHistogram()
	var meter stats.Meter

	outstanding := map[uint64]sentFrame{}
	gid := uint64(0)
	start := t.dev.Now()
	rxPorts := map[int]bool{}

	totalBytes, totalFrames := 0, 0
	for _, s := range streams {
		if len(s.Frame) == 0 || s.Count <= 0 {
			return nil, fmt.Errorf("tester: stream %q is empty", s.Name)
		}
		totalBytes += s.Count * len(s.Frame)
		totalFrames += s.Count
	}
	t.arena.Reset(totalBytes, totalFrames)

	for _, s := range streams {
		rate := s.RatePPS
		if rate <= 0 {
			rate = 10e9 / (float64(len(s.Frame)+20) * 8)
		}
		interval := time.Duration(1e9 / rate)
		rxPorts[s.RxPort] = true
		// Stamp the whole stream up front in the arena, then hand it to
		// the device as one burst: the batched data-plane path amortizes
		// per-packet overhead while producing the same virtual-time
		// schedule as one SendExternal call per frame, and the arena
		// kills the per-frame template copy — frames flow stamped slab →
		// burst → capture ring without an allocation per packet.
		streamStart := t.arena.Mark()
		for i := 0; i < s.Count; i++ {
			frame := t.arena.Frame(len(s.Frame))
			copy(frame, s.Frame)
			if s.SeqLoc.Valid() {
				if err := bitfield.Inject(frame, s.SeqLoc.BitOff, s.SeqLoc.Bits,
					bitfield.New(gid, s.SeqLoc.Bits)); err != nil {
					return nil, fmt.Errorf("tester: stream %q seq tag: %w", s.Name, err)
				}
				outstanding[gid] = sentFrame{stream: s.Name, at: start + time.Duration(i)*interval}
			}
			gid++
		}
		if err := t.dev.SendExternalBurst(s.TxPort, t.arena.Since(streamStart), start, interval); err != nil {
			return nil, err
		}
		rep.Sent += uint64(s.Count)
		sr := rep.PerStream[s.Name]
		sr.Sent += uint64(s.Count)
		rep.PerStream[s.Name] = sr
	}

	// Drain captures on every RX port and match sequence tags. Captured
	// frames are borrowed from the device's capture ring: everything the
	// tester needs (sequence tag, length, timestamp) is extracted in this
	// loop, so each port's segments go back via ReleaseCaptures as soon
	// as its drain completes.
	for port := range rxPorts {
		for _, cap := range t.dev.Captures(port) {
			rep.Received++
			meter.Record(cap.At, len(cap.Data))
			matched := false
			for _, s := range streams {
				if s.RxPort != port || !s.SeqLoc.Valid() {
					continue
				}
				v, err := bitfield.Extract(cap.Data, s.SeqLoc.BitOff, s.SeqLoc.Bits)
				if err != nil {
					continue
				}
				sf, ok := outstanding[v.Uint64()]
				if !ok || sf.stream != s.Name {
					continue
				}
				delete(outstanding, v.Uint64())
				lat.Observe(cap.At - sf.at)
				sr := rep.PerStream[s.Name]
				sr.Received++
				rep.PerStream[s.Name] = sr
				matched = true
				break
			}
			if !matched {
				rep.Unexpected++
			}
		}
		t.dev.ReleaseCaptures(port)
	}

	for _, sf := range outstanding {
		rep.Lost++
		sr := rep.PerStream[sf.stream]
		sr.Lost++
		rep.PerStream[sf.stream] = sr
	}

	rep.Pass = true
	for _, s := range streams {
		sr := rep.PerStream[s.Name]
		if s.ExpectLoss {
			sr.Pass = sr.Received == 0
		} else {
			sr.Pass = sr.Lost == 0 && sr.Received == sr.Sent
		}
		if !sr.Pass {
			rep.Pass = false
		}
		rep.PerStream[s.Name] = sr
	}

	rep.RTTMeanNs = lat.Mean().Nanoseconds()
	rep.RTTP50Ns = lat.Quantile(0.5).Nanoseconds()
	rep.RTTP99Ns = lat.Quantile(0.99).Nanoseconds()
	rep.RTTMaxNs = lat.Max().Nanoseconds()
	rep.rtt = lat
	snap := meter.Snapshot()
	rep.RxPPS = snap.PPS
	rep.RxBPS = snap.BPS
	return rep, nil
}

// MeasureThroughput floods the device at line rate from txPort and
// reports the received rate on rxPort — the performance test an external
// tester can run.
func (t *Tester) MeasureThroughput(frame []byte, count, txPort, rxPort int) (pps, bps float64, err error) {
	rep, err := t.Run([]Stream{{
		Name:  "throughput",
		Frame: frame, Count: count, TxPort: txPort, RxPort: rxPort,
	}})
	if err != nil {
		return 0, 0, err
	}
	return rep.RxPPS, rep.RxBPS, nil
}
