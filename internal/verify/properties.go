package verify

import (
	"fmt"
	"strings"
	"sync"

	"netdebug/internal/p4/ir"
	"netdebug/internal/verify/solver"
)

// Property is a universally-quantified claim about a program: it must hold
// on every feasible path.
type Property struct {
	Name        string
	Description string
	// Violation inspects one completed path and returns (violated,
	// extraConstraints): when violated is true the path is a candidate
	// counterexample, feasible iff its constraints plus the extras are
	// satisfiable.
	Violation func(prog *ir.Program, p *Path) (bool, []solver.BV)
}

// Result is the outcome of checking one property.
type Result struct {
	Property string
	// Holds is true when no feasible violating path exists.
	Holds bool
	// Inconclusive is set when the solver returned Unknown on some
	// candidate path; Holds is then false.
	Inconclusive bool
	// Counterexample is a satisfying model of a violating path.
	Counterexample solver.Model
	// Path is the violating path (nil when the property holds).
	Path *Path
	// PathsChecked and Truncated report exploration coverage.
	PathsChecked int
	Truncated    int
}

// String renders a verdict line.
func (r Result) String() string {
	switch {
	case r.Holds:
		return fmt.Sprintf("VERIFIED %s (%d paths)", r.Property, r.PathsChecked)
	case r.Inconclusive:
		return fmt.Sprintf("UNKNOWN  %s", r.Property)
	default:
		return fmt.Sprintf("VIOLATED %s: %s", r.Property, r.counterexampleString())
	}
}

func (r Result) counterexampleString() string {
	if r.Path == nil {
		return "no path"
	}
	var parts []string
	parts = append(parts, "parser path "+strings.Join(r.Path.ParserPath, "->"))
	for name, v := range r.Counterexample {
		parts = append(parts, fmt.Sprintf("%s=%s", name, v))
	}
	if len(parts) > 6 {
		parts = parts[:6]
	}
	return strings.Join(parts, " ")
}

// Check verifies one property over every explored path. Exploration and
// candidate-counterexample solving both run on Options.Workers lanes;
// the result is the same at any worker count (the lowest-ID feasible
// violation wins).
func Check(prog *ir.Program, prop Property, opts Options) (Result, error) {
	opts.fill()
	paths, truncated, err := Explore(prog, opts)
	if err != nil {
		return Result{}, err
	}
	res := Result{Property: prop.Name, Holds: true, PathsChecked: len(paths), Truncated: truncated}

	// Walk paths in order, gathering violation candidates lazily into
	// blocks of Workers and solving each block concurrently: the
	// earliest feasible violation short-circuits both the remaining
	// Violation sweeps and the remaining solves.
	type candidate struct {
		path *Path
		cons []solver.BV
	}
	cands := make([]candidate, 0, opts.Workers)
	models := make([]solver.Model, opts.Workers)
	statuses := make([]solver.Status, opts.Workers)
	for pi := 0; pi < len(paths); {
		cands = cands[:0]
		for pi < len(paths) && len(cands) < opts.Workers {
			p := paths[pi]
			pi++
			violated, extra := prop.Violation(prog, p)
			if !violated {
				continue
			}
			cons := append(append([]solver.BV(nil), p.Constraints...), extra...)
			cands = append(cands, candidate{path: p, cons: cons})
		}
		if len(cands) == 1 {
			models[0], statuses[0] = solver.Solve(cands[0].cons)
		} else if len(cands) > 1 {
			var wg sync.WaitGroup
			for i := range cands {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					models[i], statuses[i] = solver.Solve(cands[i].cons)
				}(i)
			}
			wg.Wait()
		}
		for i := range cands {
			switch statuses[i] {
			case solver.Sat:
				res.Holds = false
				res.Counterexample = models[i]
				res.Path = cands[i].path
				return res, nil
			case solver.Unknown:
				res.Holds = false
				res.Inconclusive = true
				res.Path = cands[i].path
				return res, nil
			}
			// Unsat: the violating path is infeasible; keep looking.
		}
	}
	return res, nil
}

// PropRejectedDropped asserts every parser-rejected packet is dropped.
// Under the specification semantics this package implements it holds for
// every program — which is precisely why program-level verification
// cannot find the SDNet reject erratum: the defect is in the target, not
// the program. Running the same check on the target-compiled IR (e.g.
// target.SDNet's transformed program) exposes the bug.
var PropRejectedDropped = Property{
	Name:        "rejected-implies-dropped",
	Description: "packets rejected by the parser never reach the output",
	Violation: func(prog *ir.Program, p *Path) (bool, []solver.BV) {
		return p.Verdict == "reject" && !p.Dropped, nil
	},
}

// PropForwardedHasEgress asserts every forwarded packet was assigned an
// egress port — catching paths that fall through to port 0 accidentally.
var PropForwardedHasEgress = Property{
	Name:        "forwarded-implies-egress-assigned",
	Description: "no packet is forwarded without an explicit egress port",
	Violation: func(prog *ir.Program, p *Path) (bool, []solver.BV) {
		return !p.Dropped && !p.EgressAssigned, nil
	},
}

// PropMalformedIPv4Dropped asserts packets whose IPv4 version differs
// from 4 never leave the device with the IPv4 header considered valid.
// inst names the IPv4 instance ("ipv4"), field the version field.
func PropMalformedIPv4Dropped(instName string) Property {
	return Property{
		Name:        "malformed-ipv4-dropped",
		Description: "packets with ipv4.version != 4 are not forwarded",
		Violation: func(prog *ir.Program, p *Path) (bool, []solver.BV) {
			inst := prog.Instance(instName)
			if inst == nil {
				return false, nil
			}
			fi := inst.Type.FieldIndex("version")
			if fi < 0 {
				return false, nil
			}
			if p.Dropped || !p.Valid[inst.Index] {
				return false, nil
			}
			version := p.Fields[inst.Index][fi]
			return true, []solver.BV{solver.Neq(version, solver.ConstUint(4, version.Width()))}
		},
	}
}

// PropFieldNonZeroOnForward asserts a field is never zero on forwarded
// packets (e.g. TTL after decrement).
func PropFieldNonZeroOnForward(instName, fieldName string) Property {
	return Property{
		Name:        fmt.Sprintf("forwarded-%s.%s-nonzero", instName, fieldName),
		Description: fmt.Sprintf("%s.%s is never zero on forwarded packets", instName, fieldName),
		Violation: func(prog *ir.Program, p *Path) (bool, []solver.BV) {
			inst := prog.Instance(instName)
			if inst == nil {
				return false, nil
			}
			fi := inst.Type.FieldIndex(fieldName)
			if fi < 0 {
				return false, nil
			}
			if p.Dropped || !p.Valid[inst.Index] {
				return false, nil
			}
			f := p.Fields[inst.Index][fi]
			return true, []solver.BV{solver.Eq(f, solver.ConstUint(0, f.Width()))}
		},
	}
}

// RejectReachable reports whether any feasible path reaches the parser's
// reject state — parser coverage information. Feasibility is decided
// during exploration itself (SolvePaths), so the reject paths arrive
// already solved on the worker pool.
func RejectReachable(prog *ir.Program, opts Options) (bool, error) {
	opts.SolvePaths = true
	exp, err := ExploreWithStats(prog, opts)
	if err != nil {
		return false, err
	}
	for _, p := range exp.Paths {
		if p.Verdict == "reject" && p.Model != nil {
			return true, nil
		}
	}
	return false, nil
}
