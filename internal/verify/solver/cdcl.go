package solver

// cdcl is a conflict-driven clause-learning SAT core sized for the
// formulas the verify layer produces (thousands of variables, tens of
// thousands of clauses): two-watched-literal unit propagation, first-UIP
// conflict analysis with backjumping, activity-ordered branching with
// phase saving, and geometric restarts. All state lives in flat arrays
// that are reused across solves, so a warm solver allocates nothing.
//
// Each call to solve is self-contained: the problem clauses are ingested
// from the encoder's arena, and activity, phases, and learned clauses
// are cleared first. That makes the verdict — and on Sat the model — a
// pure function of the input formula, which is what lets the parallel
// path explorer promise identical results at any worker count.
type cdcl struct {
	nVars int

	// clause arena: problem clauses first, learned clauses appended.
	lits []int32
	cOff []int32
	cLen []int32

	watches  [][]watchRec // lit code -> clauses watching that literal
	assign   []int8       // var -> 0 unknown, 1 true, -1 false
	level    []int32
	reason   []int32 // var -> clause index, -1 for decisions/units
	trail    []int32
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	heap     []int32 // max-heap of vars by activity
	heapPos  []int32 // var -> heap index, -1 when absent
	phase    []int8  // saved polarity, 1 true / -1 false

	seen   []uint8
	learnt []int32

	curLevel int32
}

// Stats accumulates solver effort counters across the lifetime of a Ctx.
type Stats struct {
	// Solves counts Check/Solve calls that reached the SAT core.
	Solves int64
	// Conflicts and Learned count conflicts analyzed and clauses learned.
	Conflicts int64
	Learned   int64
	// Propagations counts literals assigned by unit propagation.
	Propagations int64
	// MaxBackjump is the deepest non-chronological backjump observed
	// (levels skipped in one conflict; >1 means real backjumping).
	MaxBackjump int
	// PeakClauses is the largest live clause count (problem + learned)
	// reached during any single solve.
	PeakClauses int
}

// add merges two stat sets (used to aggregate per-worker solvers).
func (s *Stats) Add(o Stats) {
	s.Solves += o.Solves
	s.Conflicts += o.Conflicts
	s.Learned += o.Learned
	s.Propagations += o.Propagations
	if o.MaxBackjump > s.MaxBackjump {
		s.MaxBackjump = o.MaxBackjump
	}
	if o.PeakClauses > s.PeakClauses {
		s.PeakClauses = o.PeakClauses
	}
}

// watchRec is one watch-list entry: the watching clause plus a cached
// "blocker" literal from it — if the blocker is already true the clause
// is satisfied and propagation can skip dereferencing it entirely.
type watchRec struct {
	c       int32
	blocker int32
}

func litCode(l int32) int32 {
	if l > 0 {
		return 2 * l
	}
	return -2*l + 1
}

func litVar(l int32) int32 {
	if l > 0 {
		return l
	}
	return -l
}

func (s *cdcl) value(l int32) int8 {
	v := s.assign[litVar(l)]
	if l < 0 {
		return -v
	}
	return v
}

// solve decides the CNF over variables 1..nVars given as an arena of
// clause literals with per-clause end offsets. It returns true when
// satisfiable (read the assignment via litTrue) and updates st.
func (s *cdcl) solve(nVars int, clauseLits, clauseEnd []int32, st *Stats) bool {
	s.reinit(nVars)
	st.Solves++

	// Ingest problem clauses.
	s.lits = append(s.lits[:0], clauseLits...)
	s.cOff = s.cOff[:0]
	s.cLen = s.cLen[:0]
	start := int32(0)
	for _, end := range clauseEnd {
		n := end - start
		s.cOff = append(s.cOff, start)
		s.cLen = append(s.cLen, n)
		start = end
	}
	for ci := range s.cOff {
		off, n := s.cOff[ci], s.cLen[ci]
		if n == 1 {
			if !s.enqueue(s.lits[off], -1) {
				return false // contradicting unit clauses
			}
			continue
		}
		s.watch(s.lits[off], s.lits[off+1], int32(ci))
		s.watch(s.lits[off+1], s.lits[off], int32(ci))
	}
	if len(s.cOff) > st.PeakClauses {
		st.PeakClauses = len(s.cOff)
	}

	restartLim := int64(100)
	conflicts := int64(0)
	for {
		confl := s.propagate(st)
		if confl >= 0 {
			st.Conflicts++
			conflicts++
			if s.curLevel == 0 {
				return false
			}
			btLevel := s.analyze(confl)
			if jump := int(s.curLevel - btLevel); jump > st.MaxBackjump {
				st.MaxBackjump = jump
			}
			s.cancelUntil(btLevel)
			s.learn(st)
			s.varInc *= 1 / 0.95
			if s.varInc > 1e100 {
				for v := 1; v <= s.nVars; v++ {
					s.activity[v] *= 1e-100
				}
				s.varInc *= 1e-100
			}
			continue
		}
		if conflicts >= restartLim {
			conflicts = 0
			restartLim *= 2
			s.cancelUntil(0)
			continue
		}
		v := s.pickBranch()
		if v == 0 {
			return true // complete assignment, no conflict
		}
		s.curLevel++
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		lit := v
		if s.phase[v] < 0 {
			lit = -v
		}
		s.enqueue(lit, -1)
	}
}

// litTrue reports whether l is true under the current assignment (valid
// after solve returned true).
func (s *cdcl) litTrue(l int32) bool { return s.value(l) == 1 }

func (s *cdcl) reinit(nVars int) {
	s.nVars = nVars
	need := nVars + 1
	if cap(s.assign) < need {
		s.assign = make([]int8, need)
		s.level = make([]int32, need)
		s.reason = make([]int32, need)
		s.activity = make([]float64, need)
		s.heapPos = make([]int32, need)
		s.phase = make([]int8, need)
		s.seen = make([]uint8, need)
	}
	s.assign = s.assign[:need]
	s.level = s.level[:need]
	s.reason = s.reason[:need]
	s.activity = s.activity[:need]
	s.heapPos = s.heapPos[:need]
	s.phase = s.phase[:need]
	s.seen = s.seen[:need]
	for i := 0; i < need; i++ {
		s.assign[i] = 0
		s.level[i] = 0
		s.reason[i] = -1
		s.activity[i] = 0
		s.phase[i] = -1
		s.seen[i] = 0
	}
	codes := 2*nVars + 2
	if cap(s.watches) < codes {
		s.watches = make([][]watchRec, codes)
	}
	s.watches = s.watches[:codes]
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.curLevel = 0
	s.varInc = 1
	// All variables start in the branching heap; activity ties break
	// toward the lower variable index, so the order is deterministic.
	s.heap = s.heap[:0]
	for v := int32(1); v <= int32(nVars); v++ {
		s.heap = append(s.heap, v)
		s.heapPos[v] = v - 1
	}
}

// enqueue assigns l (true) with the given reason clause. It returns
// false when l is already false — a conflict the caller must handle.
func (s *cdcl) enqueue(l int32, reasonClause int32) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := litVar(l)
	if l > 0 {
		s.assign[v] = 1
	} else {
		s.assign[v] = -1
	}
	s.level[v] = s.curLevel
	s.reason[v] = reasonClause
	s.trail = append(s.trail, l)
	return true
}

// watch adds clause ci to l's watch list with blocker as its cached
// other watched literal.
func (s *cdcl) watch(l, blocker, ci int32) {
	code := litCode(l)
	s.watches[code] = append(s.watches[code], watchRec{c: ci, blocker: blocker})
}

// propagate runs watched-literal unit propagation; it returns the index
// of a conflicting clause, or -1 when the queue drains without conflict.
func (s *cdcl) propagate(st *Stats) int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		st.Propagations++
		fc := litCode(-p) // clauses watching ~p just lost that watch
		ws := s.watches[fc]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == 1 {
				ws[j] = w
				j++
				continue
			}
			ci := w.c
			off, n := s.cOff[ci], s.cLen[ci]
			cl := s.lits[off : off+n]
			if cl[0] == -p {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if s.value(cl[0]) == 1 {
				ws[j] = watchRec{c: ci, blocker: cl[0]}
				j++
				continue
			}
			moved := false
			for k := 2; k < len(cl); k++ {
				if s.value(cl[k]) != -1 {
					cl[1], cl[k] = cl[k], cl[1]
					s.watch(cl[1], cl[0], ci)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflict: keep watching ~p either way.
			ws[j] = watchRec{c: ci, blocker: cl[0]}
			j++
			if s.value(cl[0]) == -1 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[fc] = ws[:j]
				return ci
			}
			s.enqueue(cl[0], ci)
		}
		s.watches[fc] = ws[:j]
	}
	return -1
}

// analyze derives the first-UIP learned clause from the conflict and
// returns the backjump level. The clause is left in s.learnt with the
// asserting literal first and a watch partner at index 1.
func (s *cdcl) analyze(confl int32) int32 {
	s.learnt = s.learnt[:0]
	s.learnt = append(s.learnt, 0) // slot for the asserting literal
	counter := 0
	var p int32
	idx := len(s.trail) - 1
	for {
		off, n := s.cOff[confl], s.cLen[confl]
		cl := s.lits[off : off+n]
		if p != 0 {
			cl = cl[1:] // skip the propagated literal itself
		}
		for _, q := range cl {
			v := litVar(q)
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.bump(v)
			if s.level[v] >= s.curLevel {
				counter++
			} else {
				s.learnt = append(s.learnt, q)
			}
		}
		for s.seen[litVar(s.trail[idx])] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[litVar(p)] = 0
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[litVar(p)]
	}
	s.learnt[0] = -p

	btLevel := int32(0)
	if len(s.learnt) > 1 {
		// Move the deepest remaining literal to the watch slot.
		maxI := 1
		for i := 2; i < len(s.learnt); i++ {
			if s.level[litVar(s.learnt[i])] > s.level[litVar(s.learnt[maxI])] {
				maxI = i
			}
		}
		s.learnt[1], s.learnt[maxI] = s.learnt[maxI], s.learnt[1]
		btLevel = s.level[litVar(s.learnt[1])]
	}
	for _, q := range s.learnt[1:] {
		s.seen[litVar(q)] = 0
	}
	return btLevel
}

// learn installs s.learnt as a clause and asserts its first literal.
func (s *cdcl) learn(st *Stats) {
	st.Learned++
	if len(s.learnt) == 1 {
		s.enqueue(s.learnt[0], -1)
		return
	}
	ci := int32(len(s.cOff))
	off := int32(len(s.lits))
	s.lits = append(s.lits, s.learnt...)
	s.cOff = append(s.cOff, off)
	s.cLen = append(s.cLen, int32(len(s.learnt)))
	s.watch(s.learnt[0], s.learnt[1], ci)
	s.watch(s.learnt[1], s.learnt[0], ci)
	if len(s.cOff) > st.PeakClauses {
		st.PeakClauses = len(s.cOff)
	}
	s.enqueue(s.learnt[0], ci)
}

// cancelUntil backtracks to the given decision level, saving phases and
// restoring branch candidates to the heap.
func (s *cdcl) cancelUntil(lvl int32) {
	if s.curLevel <= lvl {
		return
	}
	target := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= target; i-- {
		l := s.trail[i]
		v := litVar(l)
		s.phase[v] = s.assign[v]
		s.assign[v] = 0
		s.reason[v] = -1
		if s.heapPos[v] < 0 {
			s.heapInsert(v)
		}
	}
	s.trail = s.trail[:target]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
	s.curLevel = lvl
}

// pickBranch pops the highest-activity unassigned variable, or 0 when
// every variable is assigned.
func (s *cdcl) pickBranch() int32 {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == 0 {
			return v
		}
	}
	return 0
}

// --- activity heap ------------------------------------------------------

func (s *cdcl) bump(v int32) {
	s.activity[v] += s.varInc
	if s.heapPos[v] >= 0 {
		s.heapUp(int(s.heapPos[v]))
	}
}

func (s *cdcl) heapLess(a, b int32) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *cdcl) heapInsert(v int32) {
	s.heapPos[v] = int32(len(s.heap))
	s.heap = append(s.heap, v)
	s.heapUp(len(s.heap) - 1)
}

func (s *cdcl) heapPop() int32 {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heapPos[s.heap[0]] = 0
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *cdcl) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(v, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.heapPos[s.heap[i]] = int32(i)
		i = parent
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}

func (s *cdcl) heapDown(i int) {
	v := s.heap[i]
	for {
		l := 2*i + 1
		if l >= len(s.heap) {
			break
		}
		best := l
		if r := l + 1; r < len(s.heap) && s.heapLess(s.heap[r], s.heap[l]) {
			best = r
		}
		if !s.heapLess(s.heap[best], v) {
			break
		}
		s.heap[i] = s.heap[best]
		s.heapPos[s.heap[i]] = int32(i)
		i = best
	}
	s.heap[i] = v
	s.heapPos[v] = int32(i)
}
