package solver

import (
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
)

func mustSat(t *testing.T, constraints ...BV) Model {
	t.Helper()
	m, st := Solve(constraints)
	if st != Sat {
		t.Fatalf("status = %v, want sat", st)
	}
	// Every model must actually satisfy every constraint.
	for _, c := range constraints {
		v, err := Eval(c, m)
		if err != nil {
			t.Fatal(err)
		}
		if v.IsZero() {
			t.Fatalf("model %v does not satisfy %s", m, c)
		}
	}
	return m
}

func mustUnsat(t *testing.T, constraints ...BV) {
	t.Helper()
	if _, st := Solve(constraints); st != Unsat {
		t.Fatalf("status = %v, want unsat", st)
	}
}

func TestEqConst(t *testing.T) {
	x := Var("x", 8)
	m := mustSat(t, Eq(x, ConstUint(0x42, 8)))
	if m["x"].Uint64() != 0x42 {
		t.Fatalf("x = %v", m["x"])
	}
}

func TestContradiction(t *testing.T) {
	x := Var("x", 8)
	mustUnsat(t, Eq(x, ConstUint(1, 8)), Eq(x, ConstUint(2, 8)))
}

func TestAddSub(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 8)
	// x + y == 10, x - y == 4, x < 16 -> x=7, y=3 (without the bound,
	// modular arithmetic also admits x=135, y=131).
	m := mustSat(t,
		Eq(Bin(OpAdd, x, y), ConstUint(10, 8)),
		Eq(Bin(OpSub, x, y), ConstUint(4, 8)),
		Bin(OpUlt, x, ConstUint(16, 8)))
	if m["x"].Uint64() != 7 || m["y"].Uint64() != 3 {
		t.Fatalf("x=%v y=%v", m["x"], m["y"])
	}
}

func TestAddOverflowWraps(t *testing.T) {
	x := Var("x", 8)
	// x + 1 == 0 -> x == 255
	m := mustSat(t, Eq(Bin(OpAdd, x, ConstUint(1, 8)), ConstUint(0, 8)))
	if m["x"].Uint64() != 255 {
		t.Fatalf("x = %v", m["x"])
	}
}

func TestComparisons(t *testing.T) {
	x := Var("x", 4)
	m := mustSat(t,
		Bin(OpUgt, x, ConstUint(5, 4)),
		Bin(OpUlt, x, ConstUint(7, 4)))
	if m["x"].Uint64() != 6 {
		t.Fatalf("x = %v", m["x"])
	}
	mustUnsat(t,
		Bin(OpUlt, x, ConstUint(3, 4)),
		Bin(OpUge, x, ConstUint(3, 4)))
	mustSat(t, Bin(OpUle, x, ConstUint(0, 4)))
}

func TestBitwise(t *testing.T) {
	x := Var("x", 8)
	m := mustSat(t,
		Eq(And(x, ConstUint(0xf0, 8)), ConstUint(0x60, 8)),
		Eq(Bin(OpOr, x, ConstUint(0xf0, 8)), ConstUint(0xf5, 8)))
	if m["x"].Uint64()&0xf0 != 0x60 || m["x"].Uint64()|0xf0 != 0xf5 {
		t.Fatalf("x = %v", m["x"])
	}
	mustSat(t, Eq(Bin(OpXor, x, x), ConstUint(0, 8)))
	mustUnsat(t, Neq(Bin(OpXor, x, x), ConstUint(0, 8)))
}

func TestShiftsByConstant(t *testing.T) {
	x := Var("x", 8)
	m := mustSat(t, Eq(Bin(OpShl, x, ConstUint(4, 8)), ConstUint(0x50, 8)),
		Bin(OpUlt, x, ConstUint(16, 8)))
	if m["x"].Uint64() != 5 {
		t.Fatalf("x = %v", m["x"])
	}
	mustUnsat(t, Neq(Bin(OpShr, Bin(OpShl, x, ConstUint(8, 8)), ConstUint(8, 8)), ConstUint(0, 8)))
}

func TestSymbolicShiftUnknown(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 8)
	if _, st := Solve([]BV{Eq(Bin(OpShl, x, y), ConstUint(4, 8))}); st != Unknown {
		t.Fatalf("status = %v, want unknown", st)
	}
}

func TestMulByConstant(t *testing.T) {
	x := Var("x", 8)
	m := mustSat(t, Eq(Bin(OpMul, x, ConstUint(3, 8)), ConstUint(21, 8)),
		Bin(OpUlt, x, ConstUint(10, 8)))
	if m["x"].Uint64() != 7 {
		t.Fatalf("x = %v", m["x"])
	}
	// Symbolic * symbolic -> unknown
	y := Var("y", 8)
	if _, st := Solve([]BV{Eq(Bin(OpMul, x, y), ConstUint(4, 8))}); st != Unknown {
		t.Fatal("symbolic mul should be unknown")
	}
}

func TestBitNotNeg(t *testing.T) {
	x := Var("x", 8)
	m := mustSat(t, Eq(Un(OpBitNot, x), ConstUint(0x0f, 8)))
	if m["x"].Uint64() != 0xf0 {
		t.Fatalf("x = %v", m["x"])
	}
	m = mustSat(t, Eq(Un(OpNeg, x), ConstUint(1, 8)))
	if m["x"].Uint64() != 255 {
		t.Fatalf("x = %v", m["x"])
	}
}

func TestLogicalNot(t *testing.T) {
	x := Var("x", 8)
	// !(x != 0) means x == 0
	m := mustSat(t, Not(Neq(x, ConstUint(0, 8))))
	if !m["x"].IsZero() {
		t.Fatalf("x = %v", m["x"])
	}
}

func TestIte(t *testing.T) {
	c := Var("c", 1)
	x := Ite(c, ConstUint(10, 8), ConstUint(20, 8))
	m := mustSat(t, Eq(x, ConstUint(10, 8)))
	if m["c"].Uint64() != 1 {
		t.Fatalf("c = %v", m["c"])
	}
	m = mustSat(t, Eq(x, ConstUint(20, 8)))
	if m["c"].Uint64() != 0 {
		t.Fatalf("c = %v", m["c"])
	}
	mustUnsat(t, Eq(x, ConstUint(30, 8)))
}

func TestWide128(t *testing.T) {
	x := Var("x", 128)
	big := bitfield.New128(0xdeadbeef, 0xcafebabe, 128)
	m := mustSat(t, Eq(x, Const(big)))
	if !m["x"].Equal(big) {
		t.Fatalf("x = %v", m["x"])
	}
	// carry across the 64-bit boundary
	lo64max := bitfield.New128(0, ^uint64(0), 128)
	m = mustSat(t, Eq(Bin(OpAdd, x, ConstUint(1, 128)), Const(bitfield.New128(1, 0, 128))))
	if !m["x"].Equal(lo64max) {
		t.Fatalf("x = %v", m["x"])
	}
}

func TestWidthMismatchUnknown(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 16)
	if _, st := Solve([]BV{Eq(x, y)}); st != Unknown {
		t.Fatal("width mismatch should be unknown")
	}
	// variable reused at a different width
	if _, st := Solve([]BV{Eq(Var("z", 8), ConstUint(0, 8)), Eq(Var("z", 4), ConstUint(0, 4))}); st != Unknown {
		t.Fatal("conflicting widths should be unknown")
	}
}

func TestNonWidth1Constraint(t *testing.T) {
	if _, st := Solve([]BV{Var("x", 8)}); st != Unknown {
		t.Fatal("wide constraint should be unknown")
	}
}

// Property: for random concrete assignments, Solve(x == a && y == b &&
// expr(x,y) == eval(expr)) is Sat — the encoder agrees with the evaluator.
func TestEncoderAgreesWithEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ops := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpEq, OpNeq, OpUlt, OpUle, OpUgt, OpUge}
	for i := 0; i < 150; i++ {
		w := []int{1, 4, 8, 13, 16, 32, 48}[rng.Intn(7)]
		a := bitfield.New(rng.Uint64(), w)
		b := bitfield.New(rng.Uint64(), w)
		op := ops[rng.Intn(len(ops))]
		x := Var("x", w)
		y := Var("y", w)
		expr := Bin(op, x, y)
		model := Model{"x": a, "y": b}
		want, err := Eval(expr, model)
		if err != nil {
			t.Fatal(err)
		}
		constraints := []BV{Eq(x, Const(a)), Eq(y, Const(b)), Eq(expr, Const(want))}
		if _, st := Solve(constraints); st != Sat {
			t.Fatalf("op %v w=%d a=%v b=%v want=%v: status %v", op, w, a, b, want, st)
		}
		// And the negation must be unsat.
		constraints[2] = Neq(expr, Const(want))
		if _, st := Solve(constraints); st != Unsat {
			t.Fatalf("op %v negation should be unsat", op)
		}
	}
}

func TestStringRendering(t *testing.T) {
	x := Var("x", 8)
	e := Ite(Eq(x, ConstUint(1, 8)), ConstUint(2, 8), Un(OpBitNot, x))
	if e.String() == "" {
		t.Fatal("empty rendering")
	}
}

// routerLikeConstraints is the constraint shape typical of a parser path
// condition; shared by the CDCL and reference solver benchmarks so the
// bench gate can assert the rebuild's speedup within one run.
func routerLikeConstraints() []BV {
	etherType := Var("ethernet.etherType", 16)
	version := Var("ipv4.version", 4)
	ihl := Var("ipv4.ihl", 4)
	ttl := Var("ipv4.ttl", 8)
	return []BV{
		Eq(etherType, ConstUint(0x0800, 16)),
		Neq(version, ConstUint(4, 4)),
		Bin(OpUge, ihl, ConstUint(5, 4)),
		Neq(ttl, ConstUint(0, 8)),
	}
}

func BenchmarkSolveRouterLikePath(b *testing.B) {
	constraints := routerLikeConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, st := Solve(constraints); st != Sat {
			b.Fatal(st)
		}
	}
}

// BenchmarkSolveReferenceRouterLikePath measures the retired DPLL
// pipeline on the identical formula; cmd/benchgate asserts Solve stays
// >= 5x faster than this within the same run.
func BenchmarkSolveReferenceRouterLikePath(b *testing.B) {
	constraints := routerLikeConstraints()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, st := SolveReference(constraints); st != Sat {
			b.Fatal(st)
		}
	}
}
