//go:build !race

package solver

// raceEnabled reports whether the race detector is active: sync.Pool
// and other runtime paths allocate under race instrumentation, so
// allocation-count assertions are skipped (the -race CI job checks for
// races; the plain job checks the allocation floor).
const raceEnabled = false
