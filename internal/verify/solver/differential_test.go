package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
)

// checkAgainstReference solves constraints with both pipelines and fails
// on any verdict disagreement; Sat models from both sides are checked
// against the evaluator.
func checkAgainstReference(t *testing.T, label string, constraints []BV) {
	t.Helper()
	mC, stC := Solve(constraints)
	mR, stR := SolveReference(constraints)
	if stC != stR {
		t.Fatalf("%s: CDCL=%v reference=%v", label, stC, stR)
	}
	if stC != Sat {
		return
	}
	for _, m := range []Model{mC, mR} {
		for _, c := range constraints {
			v, err := Eval(c, m)
			if err != nil {
				t.Fatalf("%s: eval: %v", label, err)
			}
			if v.IsZero() {
				t.Fatalf("%s: model %v does not satisfy %s", label, m, c)
			}
		}
	}
}

// TestDifferentialRandomCNF fuzzes the CDCL core against the reference
// DPLL on random CNF over 1-bit variables (each clause a width-1
// disjunction). The density sweeps through the sat/unsat phase
// transition so both verdicts are exercised.
func TestDifferentialRandomCNF(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	or := func(a, b BV) BV { return Bin(OpOr, a, b) }
	for round := 0; round < 300; round++ {
		nVars := 3 + rng.Intn(12)
		nClauses := 1 + rng.Intn(6*nVars)
		vars := make([]BV, nVars)
		for i := range vars {
			vars[i] = Var(fmt.Sprintf("v%d", i), 1)
		}
		litOf := func() BV {
			v := vars[rng.Intn(nVars)]
			if rng.Intn(2) == 0 {
				return Not(v)
			}
			return v
		}
		constraints := make([]BV, nClauses)
		for i := range constraints {
			cl := litOf()
			for k := rng.Intn(3); k > 0; k-- {
				cl = or(cl, litOf())
			}
			constraints[i] = cl
		}
		checkAgainstReference(t, fmt.Sprintf("cnf round %d", round), constraints)
	}
}

// TestDifferentialRandomTerms fuzzes both solvers on random bit-vector
// formulas mixing arithmetic, comparisons, shifts/multiplication by
// constants, and if-then-else — the full construct set the symbolic
// executor emits.
// Widths and depths stay small: the reference DPLL has no activity
// ordering or learning, so wide unconstrained formulas send it into
// exponential search — the very behaviour the CDCL rebuild retires. To
// still cover mostly-free variables, each round binds a random subset of
// the variables it used to concrete values.
func TestDifferentialRandomTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	widths := []int{1, 2, 3, 4, 6, 8}
	binOps := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor}
	cmpOps := []Op{OpEq, OpNeq, OpUlt, OpUle, OpUgt, OpUge}

	var term func(w, depth int) BV
	term = func(w, depth int) BV {
		if depth == 0 || rng.Intn(4) == 0 {
			if rng.Intn(2) == 0 {
				return Var(fmt.Sprintf("x%d_%d", w, rng.Intn(3)), w)
			}
			return Const(bitfield.New(rng.Uint64(), w))
		}
		switch rng.Intn(8) {
		case 0:
			return Un(OpBitNot, term(w, depth-1))
		case 1:
			return Un(OpNeg, term(w, depth-1))
		case 2:
			return Bin(OpShl, term(w, depth-1), ConstUint(uint64(rng.Intn(w+1)), w))
		case 3:
			return Bin(OpShr, term(w, depth-1), ConstUint(uint64(rng.Intn(w+1)), w))
		case 4:
			return Bin(OpMul, term(w, depth-1), ConstUint(uint64(rng.Intn(8)), w))
		case 5:
			cond := Bin(cmpOps[rng.Intn(len(cmpOps))], term(w, depth-1), term(w, depth-1))
			return Ite(cond, term(w, depth-1), term(w, depth-1))
		default:
			return Bin(binOps[rng.Intn(len(binOps))], term(w, depth-1), term(w, depth-1))
		}
	}

	for round := 0; round < 150; round++ {
		w := widths[rng.Intn(len(widths))]
		nCons := 1 + rng.Intn(3)
		constraints := make([]BV, 0, nCons+3)
		for i := 0; i < nCons; i++ {
			a := term(w, 2)
			b := term(w, 2)
			constraints = append(constraints, Bin(cmpOps[rng.Intn(len(cmpOps))], a, b))
		}
		// Pin a random subset of the variables so the reference's naive
		// search stays tractable while some variables remain free.
		for i := 0; i < 3; i++ {
			if rng.Intn(3) > 0 {
				constraints = append(constraints,
					Eq(Var(fmt.Sprintf("x%d_%d", w, i), w), Const(bitfield.New(rng.Uint64(), w))))
			}
		}
		checkAgainstReference(t, fmt.Sprintf("term round %d", round), constraints)
	}
}

// TestDifferentialStructuralSharing feeds formulas with heavy subterm
// repetition — the case the encoder's gate hashing targets — and checks
// the shared encoding still agrees with the unshared reference.
func TestDifferentialStructuralSharing(t *testing.T) {
	x := Var("x", 16)
	y := Var("y", 16)
	sum := Bin(OpAdd, x, y)
	for i := 0; i < 8; i++ {
		k := uint64(i * 1000)
		constraints := []BV{
			Bin(OpUge, sum, ConstUint(k, 16)),
			Bin(OpUle, sum, ConstUint(k+500, 16)),
			Neq(Bin(OpAdd, x, y), ConstUint(k+1, 16)), // same subterm, fresh node
			Bin(OpUlt, x, ConstUint(300, 16)),
		}
		checkAgainstReference(t, fmt.Sprintf("sharing k=%d", k), constraints)
	}
}

// TestUnsatBackjumpDepth builds an UNSAT pigeonhole instance (4 pigeons,
// 3 holes over 1-bit variables) and checks the CDCL core both refutes it
// and performs a non-chronological backjump deeper than one level.
func TestUnsatBackjumpDepth(t *testing.T) {
	c := NewCtx()
	or := func(a, b BV) BV { return Bin(OpOr, a, b) }
	p := func(i, j int) BV { return Var(fmt.Sprintf("p%d_%d", i, j), 1) }
	var constraints []BV
	for i := 0; i < 4; i++ { // each pigeon in some hole
		constraints = append(constraints, or(or(p(i, 0), p(i, 1)), p(i, 2)))
	}
	for j := 0; j < 3; j++ { // no two pigeons share a hole
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				constraints = append(constraints, or(Not(p(a, j)), Not(p(b, j))))
			}
		}
	}
	if err := c.Assert(constraints...); err != nil {
		t.Fatal(err)
	}
	if _, st := c.Check(); st != Unsat {
		t.Fatalf("pigeonhole status = %v, want unsat", st)
	}
	stats := c.Stats()
	if stats.Conflicts == 0 || stats.Learned == 0 {
		t.Fatalf("no conflict-driven learning recorded: %+v", stats)
	}
	if stats.MaxBackjump <= 1 {
		t.Fatalf("max backjump depth = %d, want > 1 (stats %+v)", stats.MaxBackjump, stats)
	}
	if _, st := SolveReference(constraints); st != Unsat {
		t.Fatal("reference disagrees on pigeonhole")
	}
}

// TestCtxScopes exercises the Push/Pop contract the parallel explorer
// depends on: constraints asserted in a popped scope stop constraining,
// and a scoped context matches a fresh solve of the same prefix.
func TestCtxScopes(t *testing.T) {
	x := Var("x", 8)
	c := NewCtx()
	if err := c.Assert(Bin(OpUge, x, ConstUint(10, 8))); err != nil {
		t.Fatal(err)
	}
	c.Push()
	if err := c.Assert(Eq(x, ConstUint(3, 8))); err != nil {
		t.Fatal(err)
	}
	if _, st := c.Check(); st != Unsat {
		t.Fatalf("x>=10 && x==3 should be unsat, got %v", st)
	}
	c.Pop()
	m, st := c.Check()
	if st != Sat {
		t.Fatalf("after pop: %v, want sat", st)
	}
	if v := m["x"].Uint64(); v < 10 {
		t.Fatalf("after pop x = %d, want >= 10", v)
	}
	if _, bound := m["y"]; bound {
		t.Fatal("model binds a variable that was never asserted")
	}

	// A scoped re-assert must reproduce a fresh context bit-for-bit.
	c.Push()
	if err := c.Assert(Eq(x, ConstUint(200, 8))); err != nil {
		t.Fatal(err)
	}
	mScoped, _ := c.Check()
	fresh := NewCtx()
	if err := fresh.Assert(Bin(OpUge, x, ConstUint(10, 8)), Eq(x, ConstUint(200, 8))); err != nil {
		t.Fatal(err)
	}
	mFresh, _ := fresh.Check()
	if len(mScoped) != len(mFresh) {
		t.Fatalf("model sizes differ: %v vs %v", mScoped, mFresh)
	}
	for name, v := range mFresh {
		if !mScoped[name].Equal(v) {
			t.Fatalf("scoped model diverges from fresh solve at %s: %v vs %v", name, mScoped[name], v)
		}
	}
}

// TestCtxErrorScoped: an unsupported construct poisons only the scope it
// was asserted in.
func TestCtxErrorScoped(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 8)
	c := NewCtx()
	if err := c.Assert(Eq(x, ConstUint(1, 8))); err != nil {
		t.Fatal(err)
	}
	c.Push()
	if err := c.Assert(Eq(Bin(OpMul, x, y), ConstUint(4, 8))); err == nil {
		t.Fatal("symbolic multiplication should error")
	}
	if _, st := c.Check(); st != Unknown {
		t.Fatal("poisoned scope should check unknown")
	}
	c.Pop()
	if _, st := c.Check(); st != Sat {
		t.Fatal("error must not survive the scope pop")
	}
}

// TestSolveWarmAllocs pins the allocation budget of a warm pooled solve:
// the arena rebuild's reason to exist. The only per-call allocations
// left are the returned Model.
func TestSolveWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	constraints := routerLikeConstraints()
	Solve(constraints) // warm the pooled context
	allocs := testing.AllocsPerRun(50, func() {
		if _, st := Solve(constraints); st != Sat {
			t.Fatal("unexpected unsat")
		}
	})
	if allocs > 8 {
		t.Fatalf("warm Solve allocates %.0f objects/op, want <= 8", allocs)
	}
}
