package solver

import "fmt"

// The rebuilt encoder bit-blasts BV terms to CNF like the reference one,
// but is built for reuse and sharing:
//
//   - all bit vectors live in one int32 slab (memo values are spans into
//     it), so encoding a term allocates nothing once the slab has grown;
//   - Tseitin gates are structurally hashed: gateAnd/gateOr/gateXor/
//     gateMux return the existing output literal for a (op, inputs) pair
//     instead of minting a fresh variable and re-emitting its defining
//     clauses, so repeated table/match encodings share circuitry;
//   - constant inputs fold away before a gate is ever created;
//   - the whole encoder state is scoped: push() snapshots it and popTo()
//     rewinds vars, gates, memo entries, and clauses, which is what lets
//     a path explorer keep a shared constraint prefix encoded while
//     swapping sibling branches in and out.
//
// Literals are int32: +v / -v, with variable 1 pinned true (so +1 is the
// constant true literal and -1 constant false).

// span locates a bit vector inside the slab.
type span struct {
	off, n int32
}

// gateKey identifies a Tseitin gate up to structural equality.
type gateKey struct {
	op      uint8
	a, b, c int32
}

const (
	gAnd uint8 = iota
	gOr
	gXor
	gMux
)

// encMark snapshots the encoder for scoped rewind.
type encMark struct {
	nextVar    int32
	slabLen    int
	clauseLits int
	clauses    int
	memoLog    int
	gateLog    int
	varLog     int
	err        error
}

type encoder struct {
	nextVar int32

	slab []int32 // bit-vector storage; memo/vars values point into it

	memo    map[BV]span
	memoLog []BV
	gates   map[gateKey]int32
	gateLog []gateKey
	vars    map[string]span
	varLog  []string

	// CNF clause arena: clause i is clauseLits[start_i:clauseEnd[i]]
	// with start_i = clauseEnd[i-1] (0 for the first clause).
	clauseLits []int32
	clauseEnd  []int32

	err error
}

func (e *encoder) init() {
	if e.memo == nil {
		e.memo = map[BV]span{}
		e.gates = map[gateKey]int32{}
		e.vars = map[string]span{}
	}
	e.reset()
}

// reset rewinds to an empty formula, keeping all allocated capacity.
func (e *encoder) reset() {
	e.nextVar = 1
	e.slab = e.slab[:0]
	clear(e.memo)
	clear(e.gates)
	clear(e.vars)
	e.memoLog = e.memoLog[:0]
	e.gateLog = e.gateLog[:0]
	e.varLog = e.varLog[:0]
	e.clauseLits = e.clauseLits[:0]
	e.clauseEnd = e.clauseEnd[:0]
	e.err = nil
	e.addClause1(constTrue) // unit clause pinning var 1 to true
}

const (
	constTrue  int32 = 1
	constFalse int32 = -1
)

func (e *encoder) push() encMark {
	return encMark{
		nextVar:    e.nextVar,
		slabLen:    len(e.slab),
		clauseLits: len(e.clauseLits),
		clauses:    len(e.clauseEnd),
		memoLog:    len(e.memoLog),
		gateLog:    len(e.gateLog),
		varLog:     len(e.varLog),
		err:        e.err,
	}
}

func (e *encoder) popTo(m encMark) {
	for i := m.memoLog; i < len(e.memoLog); i++ {
		delete(e.memo, e.memoLog[i])
	}
	for i := m.gateLog; i < len(e.gateLog); i++ {
		delete(e.gates, e.gateLog[i])
	}
	for i := m.varLog; i < len(e.varLog); i++ {
		delete(e.vars, e.varLog[i])
	}
	e.memoLog = e.memoLog[:m.memoLog]
	e.gateLog = e.gateLog[:m.gateLog]
	e.varLog = e.varLog[:m.varLog]
	e.nextVar = m.nextVar
	e.slab = e.slab[:m.slabLen]
	e.clauseLits = e.clauseLits[:m.clauseLits]
	e.clauseEnd = e.clauseEnd[:m.clauses]
	e.err = m.err
}

func (e *encoder) fresh() int32 {
	e.nextVar++
	return e.nextVar
}

func (e *encoder) addClause1(a int32) {
	e.clauseLits = append(e.clauseLits, a)
	e.clauseEnd = append(e.clauseEnd, int32(len(e.clauseLits)))
}

func (e *encoder) addClause2(a, b int32) {
	e.clauseLits = append(e.clauseLits, a, b)
	e.clauseEnd = append(e.clauseEnd, int32(len(e.clauseLits)))
}

func (e *encoder) addClause3(a, b, c int32) {
	e.clauseLits = append(e.clauseLits, a, b, c)
	e.clauseEnd = append(e.clauseEnd, int32(len(e.clauseLits)))
}

// assert adds one width-1 constraint to the formula.
func (e *encoder) assert(c BV) {
	if e.err != nil {
		return
	}
	if c.Width() != 1 {
		e.err = fmt.Errorf("constraint %s has width %d, want 1", c, c.Width())
		return
	}
	sp := e.bits(c)
	if e.err != nil {
		return
	}
	e.addClause1(e.slab[sp.off])
}

// --- structurally hashed gates ------------------------------------------

// gate returns the memoized output literal for key, or 0 when absent.
func (e *encoder) gateLookup(key gateKey) (int32, bool) {
	o, ok := e.gates[key]
	return o, ok
}

func (e *encoder) gateStore(key gateKey, o int32) {
	e.gates[key] = o
	e.gateLog = append(e.gateLog, key)
}

func (e *encoder) gateAnd(a, b int32) int32 {
	switch {
	case a == constFalse || b == constFalse || a == -b:
		return constFalse
	case a == constTrue || a == b:
		return b
	case b == constTrue:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := gateKey{op: gAnd, a: a, b: b}
	if o, ok := e.gateLookup(key); ok {
		return o
	}
	o := e.fresh()
	e.addClause2(-o, a)
	e.addClause2(-o, b)
	e.addClause3(o, -a, -b)
	e.gateStore(key, o)
	return o
}

func (e *encoder) gateOr(a, b int32) int32 {
	switch {
	case a == constTrue || b == constTrue || a == -b:
		return constTrue
	case a == constFalse || a == b:
		return b
	case b == constFalse:
		return a
	}
	if a > b {
		a, b = b, a
	}
	key := gateKey{op: gOr, a: a, b: b}
	if o, ok := e.gateLookup(key); ok {
		return o
	}
	o := e.fresh()
	e.addClause2(o, -a)
	e.addClause2(o, -b)
	e.addClause3(-o, a, b)
	e.gateStore(key, o)
	return o
}

func (e *encoder) gateXor(a, b int32) int32 {
	switch {
	case a == constFalse:
		return b
	case b == constFalse:
		return a
	case a == constTrue:
		return -b
	case b == constTrue:
		return -a
	case a == b:
		return constFalse
	case a == -b:
		return constTrue
	}
	if a > b {
		a, b = b, a
	}
	key := gateKey{op: gXor, a: a, b: b}
	if o, ok := e.gateLookup(key); ok {
		return o
	}
	o := e.fresh()
	e.addClause3(-o, a, b)
	e.addClause3(-o, -a, -b)
	e.addClause3(o, -a, b)
	e.addClause3(o, a, -b)
	e.gateStore(key, o)
	return o
}

// gateMux returns c ? a : b.
func (e *encoder) gateMux(c, a, b int32) int32 {
	switch {
	case c == constTrue || a == b:
		return a
	case c == constFalse:
		return b
	case a == constTrue && b == constFalse:
		return c
	case a == constFalse && b == constTrue:
		return -c
	}
	key := gateKey{op: gMux, a: a, b: b, c: c}
	if o, ok := e.gateLookup(key); ok {
		return o
	}
	o := e.fresh()
	e.addClause3(-o, -c, a)
	e.addClause3(-o, c, b)
	e.addClause3(o, -c, -a)
	e.addClause3(o, c, -b)
	e.gateStore(key, o)
	return o
}

// --- term encoding ------------------------------------------------------

// at reads bit i of a span. Spans are stable: the slab only grows (until
// a popTo truncates past them, at which point no live span refers there).
func (e *encoder) at(sp span, i int) int32 { return e.slab[int(sp.off)+i] }

// bits encodes t (memoized), returning the span of its literals, least
// significant bit first.
func (e *encoder) bits(t BV) span {
	if e.err != nil {
		return span{}
	}
	if sp, ok := e.memo[t]; ok {
		return sp
	}
	sp := e.encode(t)
	if e.err == nil {
		e.memo[t] = sp
		e.memoLog = append(e.memoLog, t)
	}
	return sp
}

// begin marks the start of a result span; the encode helpers append
// result literals to the slab and close the span with e.close(off).
func (e *encoder) begin() int32 { return int32(len(e.slab)) }

func (e *encoder) close(off int32) span {
	return span{off: off, n: int32(len(e.slab)) - off}
}

func (e *encoder) encode(t BV) span {
	switch t := t.(type) {
	case ConstBV:
		off := e.begin()
		for i := 0; i < t.Width(); i++ {
			if t.V.Bit(i) == 1 {
				e.slab = append(e.slab, constTrue)
			} else {
				e.slab = append(e.slab, constFalse)
			}
		}
		return e.close(off)
	case VarBV:
		if sp, ok := e.vars[t.Name]; ok {
			if int(sp.n) != t.W {
				e.err = fmt.Errorf("variable %q used at widths %d and %d", t.Name, sp.n, t.W)
				return span{}
			}
			return sp
		}
		off := e.begin()
		for i := 0; i < t.W; i++ {
			e.slab = append(e.slab, e.fresh())
		}
		sp := e.close(off)
		e.vars[t.Name] = sp
		e.varLog = append(e.varLog, t.Name)
		return sp
	case UnBV:
		x := e.bits(t.X)
		if e.err != nil {
			return span{}
		}
		switch t.Op {
		case OpNot:
			// width-1 logical not of a possibly wide operand: !x == (x == 0)
			nz := e.orReduce(x)
			off := e.begin()
			e.slab = append(e.slab, -nz)
			return e.close(off)
		case OpBitNot:
			off := e.begin()
			for i := 0; i < int(x.n); i++ {
				e.slab = append(e.slab, -e.at(x, i))
			}
			return e.close(off)
		case OpNeg:
			// 0 - x, with the zero folded into the subtractor inputs.
			return e.subFromZero(x)
		}
	case IteBV:
		c := e.bits(t.Cond)
		a := e.bits(t.A)
		b := e.bits(t.B)
		if e.err != nil {
			return span{}
		}
		if a.n != b.n {
			e.err = fmt.Errorf("ite branch widths differ: %d vs %d", a.n, b.n)
			return span{}
		}
		cond := e.at(c, 0)
		off := e.begin()
		for i := 0; i < int(a.n); i++ {
			e.slab = append(e.slab, e.gateMux(cond, e.at(a, i), e.at(b, i)))
		}
		return e.close(off)
	case BinBV:
		return e.encodeBin(t)
	}
	e.err = fmt.Errorf("solver: cannot encode %T", t)
	return span{}
}

func (e *encoder) encodeBin(t BinBV) span {
	// Shifts and multiplication require a constant operand.
	switch t.Op {
	case OpShl, OpShr:
		k, ok := t.B.(ConstBV)
		if !ok {
			e.err = fmt.Errorf("symbolic shift amount in %s", t)
			return span{}
		}
		x := e.bits(t.A)
		if e.err != nil {
			return span{}
		}
		n := int(k.V.Uint64())
		off := e.begin()
		for i := 0; i < int(x.n); i++ {
			src := i - n
			if t.Op == OpShr {
				src = i + n
			}
			if src >= 0 && src < int(x.n) {
				e.slab = append(e.slab, e.at(x, src))
			} else {
				e.slab = append(e.slab, constFalse)
			}
		}
		return e.close(off)
	case OpMul:
		return e.encodeMul(t)
	}

	a := e.bits(t.A)
	b := e.bits(t.B)
	if e.err != nil {
		return span{}
	}
	switch t.Op {
	case OpAnd, OpOr, OpXor:
		if a.n != b.n {
			e.err = fmt.Errorf("width mismatch %d vs %d", a.n, b.n)
			return span{}
		}
		off := e.begin()
		for i := 0; i < int(a.n); i++ {
			var o int32
			switch t.Op {
			case OpAnd:
				o = e.gateAnd(e.at(a, i), e.at(b, i))
			case OpOr:
				o = e.gateOr(e.at(a, i), e.at(b, i))
			default:
				o = e.gateXor(e.at(a, i), e.at(b, i))
			}
			e.slab = append(e.slab, o)
		}
		return e.close(off)
	case OpAdd:
		return e.adder(a, b, 0, false)
	case OpSub:
		return e.adder(a, b, 0, true)
	case OpEq:
		o := e.equalBit(a, b)
		off := e.begin()
		e.slab = append(e.slab, o)
		return e.close(off)
	case OpNeq:
		o := e.equalBit(a, b)
		off := e.begin()
		e.slab = append(e.slab, -o)
		return e.close(off)
	case OpUlt:
		o := e.lessBit(a, b)
		off := e.begin()
		e.slab = append(e.slab, o)
		return e.close(off)
	case OpUge:
		o := e.lessBit(a, b)
		off := e.begin()
		e.slab = append(e.slab, -o)
		return e.close(off)
	case OpUgt:
		o := e.lessBit(b, a)
		off := e.begin()
		e.slab = append(e.slab, o)
		return e.close(off)
	case OpUle:
		o := e.lessBit(b, a)
		off := e.begin()
		e.slab = append(e.slab, -o)
		return e.close(off)
	}
	e.err = fmt.Errorf("solver: cannot encode op %v", t.Op)
	return span{}
}

// adder appends a ripple-carry a+b (or a-b as a+~b+1 when sub is set),
// shifting b left by bShift bit positions (used by the multiplier;
// shifted-in low bits read as constant false).
func (e *encoder) adder(a, b span, bShift int, sub bool) span {
	if a.n != b.n {
		e.err = fmt.Errorf("width mismatch %d vs %d", a.n, b.n)
		return span{}
	}
	carry := constFalse
	if sub {
		carry = constTrue
	}
	off := e.begin()
	for i := 0; i < int(a.n); i++ {
		bi := constFalse
		if i-bShift >= 0 && i-bShift < int(b.n) {
			bi = e.at(b, i-bShift)
		}
		if sub {
			bi = -bi
		}
		ai := e.at(a, i)
		axb := e.gateXor(ai, bi)
		e.slab = append(e.slab, e.gateXor(axb, carry))
		carry = e.gateOr(e.gateAnd(ai, bi), e.gateAnd(axb, carry))
	}
	return e.close(off)
}

// subFromZero appends 0 - x (two's complement negation).
func (e *encoder) subFromZero(x span) span {
	carry := constTrue
	off := e.begin()
	for i := 0; i < int(x.n); i++ {
		bi := -e.at(x, i)
		axb := bi // 0 xor bi
		e.slab = append(e.slab, e.gateXor(axb, carry))
		carry = e.gateAnd(axb, carry) // 0 and bi == 0
	}
	return e.close(off)
}

// encodeMul encodes multiplication by a constant as shift-and-add over
// the set bits of the constant.
func (e *encoder) encodeMul(t BinBV) span {
	kb, okB := t.B.(ConstBV)
	ka, okA := t.A.(ConstBV)
	var x span
	var k ConstBV
	switch {
	case okB:
		x, k = e.bits(t.A), kb
	case okA:
		x, k = e.bits(t.B), ka
	default:
		e.err = fmt.Errorf("symbolic multiplication in %s", t)
		return span{}
	}
	if e.err != nil {
		return span{}
	}
	// acc starts at zero.
	acc := e.begin()
	for i := 0; i < int(x.n); i++ {
		e.slab = append(e.slab, constFalse)
	}
	accSp := e.close(acc)
	for i := 0; i < k.V.Width() && i < int(x.n); i++ {
		if k.V.Bit(i) == 0 {
			continue
		}
		accSp = e.adder(accSp, x, i, false)
	}
	return accSp
}

// equalBit returns a literal that is true iff a == b.
func (e *encoder) equalBit(a, b span) int32 {
	if a.n != b.n {
		e.err = fmt.Errorf("width mismatch %d vs %d", a.n, b.n)
		return constFalse
	}
	acc := constTrue
	for i := 0; i < int(a.n); i++ {
		acc = e.gateAnd(acc, -e.gateXor(e.at(a, i), e.at(b, i)))
	}
	return acc
}

// lessBit returns a literal true iff a < b unsigned.
func (e *encoder) lessBit(a, b span) int32 {
	if a.n != b.n {
		e.err = fmt.Errorf("width mismatch %d vs %d", a.n, b.n)
		return constFalse
	}
	lt := constFalse
	for i := 0; i < int(a.n); i++ { // LSB to MSB; MSB dominates
		ai, bi := e.at(a, i), e.at(b, i)
		bitLt := e.gateAnd(-ai, bi)
		bitEq := -e.gateXor(ai, bi)
		lt = e.gateOr(bitLt, e.gateAnd(bitEq, lt))
	}
	return lt
}

// orReduce returns a literal true iff any bit is set.
func (e *encoder) orReduce(x span) int32 {
	acc := constFalse
	for i := 0; i < int(x.n); i++ {
		acc = e.gateOr(acc, e.at(x, i))
	}
	return acc
}
