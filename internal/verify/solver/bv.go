// Package solver implements a small decision procedure for fixed-width
// bit-vector constraints: terms are bit-blasted to CNF through a
// structurally-hashed Tseitin encoder and decided by a two-watched-
// literal CDCL SAT core (conflict-driven backjumping, activity-ordered
// branching, arena-backed clause storage). The retired naive pipeline is
// kept as SolveReference and serves as the differential-testing oracle.
//
// It is the engine behind NetDebug's software formal-verification baseline
// (package verify), standing in for the SMT solvers used by tools like
// p4v. It supports the operations that occur in P4 data-plane programs —
// bitwise logic, modular add/sub, comparisons, shifts by constants, and
// if-then-else — over widths up to 128 bits.
package solver

import (
	"fmt"

	"netdebug/internal/bitfield"
)

// BV is a bit-vector term.
type BV interface {
	Width() int
	String() string
}

// ConstBV is a literal value.
type ConstBV struct {
	V bitfield.Value
}

// Width implements BV.
func (c ConstBV) Width() int { return c.V.Width() }

// String implements BV.
func (c ConstBV) String() string { return c.V.String() }

// Const builds a constant term.
func Const(v bitfield.Value) BV { return ConstBV{V: v} }

// ConstUint builds a constant term from a uint64.
func ConstUint(v uint64, w int) BV { return ConstBV{V: bitfield.New(v, w)} }

// VarBV is a free variable.
type VarBV struct {
	Name string
	W    int
}

// Width implements BV.
func (v VarBV) Width() int { return v.W }

// String implements BV.
func (v VarBV) String() string { return v.Name }

// Var builds a free variable term.
func Var(name string, w int) BV { return VarBV{Name: name, W: w} }

// Op enumerates bit-vector operations.
type Op int

// Operations. Comparison and logical results are width-1.
const (
	OpAdd Op = iota
	OpSub
	OpMul // constant operand only
	OpAnd
	OpOr
	OpXor
	OpShl // constant shift only
	OpShr // constant shift only
	OpEq
	OpNeq
	OpUlt
	OpUle
	OpUgt
	OpUge
	OpNot    // unary, width-1 logical not
	OpBitNot // unary complement
	OpNeg    // unary two's complement
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpAnd: "&", OpOr: "|", OpXor: "^",
	OpShl: "<<", OpShr: ">>", OpEq: "==", OpNeq: "!=", OpUlt: "<",
	OpUle: "<=", OpUgt: ">", OpUge: ">=", OpNot: "!", OpBitNot: "~",
	OpNeg: "-",
}

// String names the operation.
func (op Op) String() string { return opNames[op] }

// BinBV applies a binary operation.
type BinBV struct {
	Op   Op
	A, B BV
	W    int
}

// Width implements BV.
func (b BinBV) Width() int { return b.W }

// String implements BV.
func (b BinBV) String() string {
	return fmt.Sprintf("(%s %s %s)", b.A, b.Op, b.B)
}

// UnBV applies a unary operation.
type UnBV struct {
	Op Op
	X  BV
	W  int
}

// Width implements BV.
func (u UnBV) Width() int { return u.W }

// String implements BV.
func (u UnBV) String() string { return u.Op.String() + u.X.String() }

// IteBV is if-then-else: width-1 condition selecting between equal-width
// branches.
type IteBV struct {
	Cond, A, B BV
	W          int
}

// Width implements BV.
func (i IteBV) Width() int { return i.W }

// String implements BV.
func (i IteBV) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", i.Cond, i.A, i.B)
}

// Bin builds a binary term with the conventional result width.
func Bin(op Op, a, b BV) BV {
	w := a.Width()
	switch op {
	case OpEq, OpNeq, OpUlt, OpUle, OpUgt, OpUge:
		w = 1
	}
	return BinBV{Op: op, A: a, B: b, W: w}
}

// Un builds a unary term.
func Un(op Op, x BV) BV {
	w := x.Width()
	if op == OpNot {
		w = 1
	}
	return UnBV{Op: op, X: x, W: w}
}

// Ite builds an if-then-else term.
func Ite(cond, a, b BV) BV { return IteBV{Cond: cond, A: a, B: b, W: a.Width()} }

// Convenience constructors used heavily by the symbolic executor.

// Eq is a == b.
func Eq(a, b BV) BV { return Bin(OpEq, a, b) }

// Neq is a != b.
func Neq(a, b BV) BV { return Bin(OpNeq, a, b) }

// And is bitwise a & b.
func And(a, b BV) BV { return Bin(OpAnd, a, b) }

// Not is the width-1 logical negation.
func Not(a BV) BV { return Un(OpNot, a) }

// True is the width-1 constant 1.
func True() BV { return ConstUint(1, 1) }

// False is the width-1 constant 0.
func False() BV { return ConstUint(0, 1) }

// Model maps variable names to values.
type Model map[string]bitfield.Value

// Eval computes the concrete value of a term under a model. Unbound
// variables evaluate to zero. It returns an error for malformed terms.
func Eval(t BV, m Model) (bitfield.Value, error) {
	switch t := t.(type) {
	case ConstBV:
		return t.V, nil
	case VarBV:
		if v, ok := m[t.Name]; ok {
			return v.WithWidth(t.W), nil
		}
		return bitfield.New(0, t.W), nil
	case UnBV:
		x, err := Eval(t.X, m)
		if err != nil {
			return bitfield.Value{}, err
		}
		switch t.Op {
		case OpNot:
			if x.IsZero() {
				return bitfield.New(1, 1), nil
			}
			return bitfield.New(0, 1), nil
		case OpBitNot:
			return x.Not(), nil
		case OpNeg:
			return bitfield.New(0, x.Width()).Sub(x), nil
		}
		return bitfield.Value{}, fmt.Errorf("solver: bad unary op %v", t.Op)
	case BinBV:
		a, err := Eval(t.A, m)
		if err != nil {
			return bitfield.Value{}, err
		}
		b, err := Eval(t.B, m)
		if err != nil {
			return bitfield.Value{}, err
		}
		bool1 := func(v bool) bitfield.Value {
			if v {
				return bitfield.New(1, 1)
			}
			return bitfield.New(0, 1)
		}
		switch t.Op {
		case OpAdd:
			return a.Add(b), nil
		case OpSub:
			return a.Sub(b), nil
		case OpMul:
			return a.Mul(b), nil
		case OpAnd:
			return a.And(b), nil
		case OpOr:
			return a.Or(b), nil
		case OpXor:
			return a.Xor(b), nil
		case OpShl:
			return a.Shl(int(b.Uint64())), nil
		case OpShr:
			return a.Shr(int(b.Uint64())), nil
		case OpEq:
			return bool1(a.Equal(b)), nil
		case OpNeq:
			return bool1(!a.Equal(b)), nil
		case OpUlt:
			return bool1(a.Cmp(b) < 0), nil
		case OpUle:
			return bool1(a.Cmp(b) <= 0), nil
		case OpUgt:
			return bool1(a.Cmp(b) > 0), nil
		case OpUge:
			return bool1(a.Cmp(b) >= 0), nil
		}
		return bitfield.Value{}, fmt.Errorf("solver: bad binary op %v", t.Op)
	case IteBV:
		c, err := Eval(t.Cond, m)
		if err != nil {
			return bitfield.Value{}, err
		}
		if !c.IsZero() {
			return Eval(t.A, m)
		}
		return Eval(t.B, m)
	}
	return bitfield.Value{}, fmt.Errorf("solver: unknown term %T", t)
}
