package solver

import (
	"fmt"

	"netdebug/internal/bitfield"
)

// SolveReference decides the conjunction of width-1 constraints with the
// original naive pipeline: per-call Tseitin bit-blasting without
// structural hashing, decided by a recursive DPLL over the full clause
// list. It is kept verbatim as the differential-testing oracle for the
// CDCL rebuild (see Solve): the two implementations share nothing beyond
// the BV term types, so a bug in the watched-literal propagation, the
// conflict analysis, or the gate hashing shows up as a verdict
// disagreement in the fuzz suites.
func SolveReference(constraints []BV) (Model, Status) {
	enc := newRefEncoder()
	for _, c := range constraints {
		if c.Width() != 1 {
			enc.err = fmt.Errorf("constraint %s has width %d, want 1", c, c.Width())
			break
		}
		bits := enc.bits(c)
		if enc.err != nil {
			break
		}
		enc.addClause(bits[0]) // assert true
	}
	if enc.err != nil {
		return nil, Unknown
	}
	assign := dpll(enc.clauses, enc.nextVar)
	if assign == nil {
		return nil, Unsat
	}
	model := Model{}
	for name, lits := range enc.vars {
		var hi, lo uint64
		for i, lit := range lits {
			if assign[lit] {
				if i >= 64 {
					hi |= 1 << uint(i-64)
				} else {
					lo |= 1 << uint(i)
				}
			}
		}
		model[name] = bitfield.New128(hi, lo, len(lits))
	}
	return model, Sat
}

// refEncoder bit-blasts terms to CNF without sharing gates between
// structurally identical subterms. Literals are positive ints; negation
// is the negative int. Variable 1 is reserved as constant true.
type refEncoder struct {
	clauses [][]int
	nextVar int
	memo    map[BV][]int
	vars    map[string][]int
	err     error
}

func newRefEncoder() *refEncoder {
	e := &refEncoder{nextVar: 1, memo: map[BV][]int{}, vars: map[string][]int{}}
	e.addClause(e.constTrue()) // unit clause pinning var 1 to true
	return e
}

func (e *refEncoder) constTrue() int  { return 1 }
func (e *refEncoder) constFalse() int { return -1 }

func (e *refEncoder) fresh() int {
	e.nextVar++
	return e.nextVar
}

func (e *refEncoder) addClause(lits ...int) {
	e.clauses = append(e.clauses, lits)
}

// lit builders for gates (Tseitin encoding).

func (e *refEncoder) gateAnd(a, b int) int {
	o := e.fresh()
	e.addClause(-o, a)
	e.addClause(-o, b)
	e.addClause(o, -a, -b)
	return o
}

func (e *refEncoder) gateOr(a, b int) int {
	o := e.fresh()
	e.addClause(o, -a)
	e.addClause(o, -b)
	e.addClause(-o, a, b)
	return o
}

func (e *refEncoder) gateXor(a, b int) int {
	o := e.fresh()
	e.addClause(-o, a, b)
	e.addClause(-o, -a, -b)
	e.addClause(o, -a, b)
	e.addClause(o, a, -b)
	return o
}

// gateMux returns c ? a : b.
func (e *refEncoder) gateMux(c, a, b int) int {
	o := e.fresh()
	e.addClause(-o, -c, a)
	e.addClause(-o, c, b)
	e.addClause(o, -c, -a)
	e.addClause(o, c, -b)
	return o
}

// bits returns the literal for each bit of t, least significant first.
func (e *refEncoder) bits(t BV) []int {
	if e.err != nil {
		return nil
	}
	if out, ok := e.memo[t]; ok {
		return out
	}
	out := e.encode(t)
	if e.err == nil {
		e.memo[t] = out
	}
	return out
}

func (e *refEncoder) encode(t BV) []int {
	switch t := t.(type) {
	case ConstBV:
		out := make([]int, t.Width())
		for i := range out {
			if t.V.Bit(i) == 1 {
				out[i] = e.constTrue()
			} else {
				out[i] = e.constFalse()
			}
		}
		return out
	case VarBV:
		if lits, ok := e.vars[t.Name]; ok {
			if len(lits) != t.W {
				e.err = fmt.Errorf("variable %q used at widths %d and %d", t.Name, len(lits), t.W)
				return nil
			}
			return lits
		}
		lits := make([]int, t.W)
		for i := range lits {
			lits[i] = e.fresh()
		}
		e.vars[t.Name] = lits
		return lits
	case UnBV:
		x := e.bits(t.X)
		if e.err != nil {
			return nil
		}
		switch t.Op {
		case OpNot:
			// width-1 logical not of a possibly wide operand: !x == (x == 0)
			nz := e.orReduce(x)
			return []int{-nz}
		case OpBitNot:
			out := make([]int, len(x))
			for i := range x {
				out[i] = -x[i]
			}
			return out
		case OpNeg:
			zero := make([]int, len(x))
			for i := range zero {
				zero[i] = e.constFalse()
			}
			diff, _ := e.subtract(zero, x)
			return diff
		}
	case IteBV:
		c := e.bits(t.Cond)
		a := e.bits(t.A)
		b := e.bits(t.B)
		if e.err != nil {
			return nil
		}
		if len(a) != len(b) {
			e.err = fmt.Errorf("ite branch widths differ: %d vs %d", len(a), len(b))
			return nil
		}
		out := make([]int, len(a))
		for i := range a {
			out[i] = e.gateMux(c[0], a[i], b[i])
		}
		return out
	case BinBV:
		return e.encodeBin(t)
	}
	e.err = fmt.Errorf("solver: cannot encode %T", t)
	return nil
}

func (e *refEncoder) encodeBin(t BinBV) []int {
	// Shifts and multiplication require a constant operand.
	switch t.Op {
	case OpShl, OpShr:
		k, ok := t.B.(ConstBV)
		if !ok {
			e.err = fmt.Errorf("symbolic shift amount in %s", t)
			return nil
		}
		x := e.bits(t.A)
		if e.err != nil {
			return nil
		}
		n := int(k.V.Uint64())
		out := make([]int, len(x))
		for i := range out {
			src := -1
			if t.Op == OpShl {
				src = i - n
			} else {
				src = i + n
			}
			if src >= 0 && src < len(x) {
				out[i] = x[src]
			} else {
				out[i] = e.constFalse()
			}
		}
		return out
	case OpMul:
		kb, okB := t.B.(ConstBV)
		ka, okA := t.A.(ConstBV)
		var x []int
		var k bitfield.Value
		switch {
		case okB:
			x, k = e.bits(t.A), kb.V
		case okA:
			x, k = e.bits(t.B), ka.V
		default:
			e.err = fmt.Errorf("symbolic multiplication in %s", t)
			return nil
		}
		if e.err != nil {
			return nil
		}
		// shift-and-add over set bits of the constant
		acc := make([]int, len(x))
		for i := range acc {
			acc[i] = e.constFalse()
		}
		for i := 0; i < k.Width() && i < len(x); i++ {
			if k.Bit(i) == 0 {
				continue
			}
			shifted := make([]int, len(x))
			for j := range shifted {
				if j-i >= 0 {
					shifted[j] = x[j-i]
				} else {
					shifted[j] = e.constFalse()
				}
			}
			acc, _ = e.add(acc, shifted)
		}
		return acc
	}

	a := e.bits(t.A)
	b := e.bits(t.B)
	if e.err != nil {
		return nil
	}
	switch t.Op {
	case OpAnd:
		return e.mapBits(a, b, e.gateAnd)
	case OpOr:
		return e.mapBits(a, b, e.gateOr)
	case OpXor:
		return e.mapBits(a, b, e.gateXor)
	case OpAdd:
		out, _ := e.add(a, b)
		return out
	case OpSub:
		out, _ := e.subtract(a, b)
		return out
	case OpEq:
		return []int{e.equalBit(a, b)}
	case OpNeq:
		return []int{-e.equalBit(a, b)}
	case OpUlt:
		return []int{e.lessBit(a, b)}
	case OpUge:
		return []int{-e.lessBit(a, b)}
	case OpUgt:
		return []int{e.lessBit(b, a)}
	case OpUle:
		return []int{-e.lessBit(b, a)}
	}
	e.err = fmt.Errorf("solver: cannot encode op %v", t.Op)
	return nil
}

func (e *refEncoder) mapBits(a, b []int, gate func(int, int) int) []int {
	if len(a) != len(b) {
		e.err = fmt.Errorf("width mismatch %d vs %d", len(a), len(b))
		return nil
	}
	out := make([]int, len(a))
	for i := range a {
		out[i] = gate(a[i], b[i])
	}
	return out
}

// add returns sum bits and carry-out (ripple carry).
func (e *refEncoder) add(a, b []int) ([]int, int) {
	if len(a) != len(b) {
		e.err = fmt.Errorf("width mismatch %d vs %d", len(a), len(b))
		return nil, 0
	}
	out := make([]int, len(a))
	carry := e.constFalse()
	for i := range a {
		axb := e.gateXor(a[i], b[i])
		out[i] = e.gateXor(axb, carry)
		carry = e.gateOr(e.gateAnd(a[i], b[i]), e.gateAnd(axb, carry))
	}
	return out, carry
}

// subtract computes a - b (two's complement).
func (e *refEncoder) subtract(a, b []int) ([]int, int) {
	nb := make([]int, len(b))
	for i := range b {
		nb[i] = -b[i]
	}
	// a + ~b + 1: seed carry with 1.
	if len(a) != len(nb) {
		e.err = fmt.Errorf("width mismatch %d vs %d", len(a), len(nb))
		return nil, 0
	}
	out := make([]int, len(a))
	carry := e.constTrue()
	for i := range a {
		axb := e.gateXor(a[i], nb[i])
		out[i] = e.gateXor(axb, carry)
		carry = e.gateOr(e.gateAnd(a[i], nb[i]), e.gateAnd(axb, carry))
	}
	return out, carry
}

// equalBit returns a literal that is true iff a == b.
func (e *refEncoder) equalBit(a, b []int) int {
	if len(a) != len(b) {
		e.err = fmt.Errorf("width mismatch %d vs %d", len(a), len(b))
		return e.constFalse()
	}
	acc := e.constTrue()
	for i := range a {
		acc = e.gateAnd(acc, -e.gateXor(a[i], b[i]))
	}
	return acc
}

// lessBit returns a literal true iff a < b unsigned.
func (e *refEncoder) lessBit(a, b []int) int {
	if len(a) != len(b) {
		e.err = fmt.Errorf("width mismatch %d vs %d", len(a), len(b))
		return e.constFalse()
	}
	lt := e.constFalse()
	for i := 0; i < len(a); i++ { // LSB to MSB; MSB dominates
		bitLt := e.gateAnd(-a[i], b[i])
		bitEq := -e.gateXor(a[i], b[i])
		lt = e.gateOr(bitLt, e.gateAnd(bitEq, lt))
	}
	return lt
}

// orReduce returns a literal true iff any bit is set.
func (e *refEncoder) orReduce(x []int) int {
	acc := e.constFalse()
	for _, b := range x {
		acc = e.gateOr(acc, b)
	}
	return acc
}

// dpll decides CNF satisfiability over variables 1..nvars. It returns nil
// for unsat, or the assignment (indexed by literal, true entries for
// positive literals).
func dpll(clauses [][]int, nvars int) map[int]bool {
	assign := make([]int8, nvars+1) // 0 unknown, 1 true, -1 false
	trail := make([]int, 0, nvars)

	value := func(lit int) int8 {
		v := assign[abs(lit)]
		if lit < 0 {
			return -v
		}
		return v
	}
	assignLit := func(lit int) {
		if lit > 0 {
			assign[lit] = 1
		} else {
			assign[-lit] = -1
		}
		trail = append(trail, lit)
	}

	// propagate runs unit propagation; returns false on conflict.
	propagate := func() bool {
		for changed := true; changed; {
			changed = false
			for _, cl := range clauses {
				unassigned := 0
				var unit int
				sat := false
				for _, lit := range cl {
					switch value(lit) {
					case 1:
						sat = true
					case 0:
						unassigned++
						unit = lit
					}
					if sat {
						break
					}
				}
				if sat {
					continue
				}
				if unassigned == 0 {
					return false // conflict
				}
				if unassigned == 1 {
					assignLit(unit)
					changed = true
				}
			}
		}
		return true
	}

	var solve func() bool
	solve = func() bool {
		if !propagate() {
			return false
		}
		// Pick first unassigned variable.
		pick := 0
		for v := 1; v <= nvars; v++ {
			if assign[v] == 0 {
				pick = v
				break
			}
		}
		if pick == 0 {
			return true // all assigned, no conflict
		}
		mark := len(trail)
		for _, phase := range []int{pick, -pick} {
			assignLit(phase)
			if solve() {
				return true
			}
			// undo
			for len(trail) > mark {
				lit := trail[len(trail)-1]
				trail = trail[:len(trail)-1]
				assign[abs(lit)] = 0
			}
		}
		return false
	}

	if !solve() {
		return nil
	}
	out := make(map[int]bool, nvars)
	for v := 1; v <= nvars; v++ {
		out[v] = assign[v] == 1
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
