package solver

import (
	"fmt"
	"sync"

	"netdebug/internal/bitfield"
)

// Status is a solver verdict.
type Status int

// Verdicts.
const (
	// Unsat: no assignment satisfies the constraints.
	Unsat Status = iota
	// Sat: a satisfying assignment was found (see the returned Model).
	Sat
	// Unknown: the constraints use an unsupported construct (symbolic
	// shift amounts, symbolic multiplication).
	Unknown
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Ctx is a reusable solving context: a structurally-hashed Tseitin
// encoder feeding a CDCL SAT core, with all storage held in arenas that
// survive across calls. A warm Ctx solves without heap allocation beyond
// the returned Model.
//
// The context is scoped: Push snapshots the asserted formula and Pop
// rewinds to the last snapshot, discarding the constraints (and any
// encoder state) added in between. A path explorer uses this to keep a
// shared constraint prefix encoded once while sibling branches are
// asserted and retracted around it.
//
// Determinism contract: the verdict and model returned by Check depend
// only on the sequence of constraints currently asserted — never on what
// was solved (or popped) before. Each Check re-seeds the SAT core's
// activity, phases, and learned-clause store, so a Ctx reused across
// many solves behaves exactly like a fresh one on each formula.
//
// A Ctx is not safe for concurrent use; give each worker its own.
type Ctx struct {
	enc   encoder
	sat   cdcl
	marks []encMark
	stats Stats
}

// NewCtx returns an empty solving context.
func NewCtx() *Ctx {
	c := &Ctx{}
	c.enc.init()
	return c
}

// Reset discards every asserted constraint and scope, keeping capacity.
func (c *Ctx) Reset() {
	c.enc.reset()
	c.marks = c.marks[:0]
}

// Push opens a scope; the matching Pop retracts everything asserted
// since.
func (c *Ctx) Push() {
	c.marks = append(c.marks, c.enc.push())
}

// Pop closes the innermost scope. Popping with no open scope panics.
func (c *Ctx) Pop() {
	m := c.marks[len(c.marks)-1]
	c.marks = c.marks[:len(c.marks)-1]
	c.enc.popTo(m)
}

// Assert adds width-1 constraints to the current scope. A non-nil error
// reports an unsupported construct (the corresponding Check returns
// Unknown until the offending scope is popped or the Ctx reset).
func (c *Ctx) Assert(constraints ...BV) error {
	for _, t := range constraints {
		c.enc.assert(t)
	}
	return c.enc.err
}

// Check decides the conjunction of all asserted constraints. On Sat the
// model binds every variable mentioned in them.
func (c *Ctx) Check() (Model, Status) {
	if c.enc.err != nil {
		return nil, Unknown
	}
	if !c.sat.solve(int(c.enc.nextVar), c.enc.clauseLits, c.enc.clauseEnd, &c.stats) {
		return nil, Unsat
	}
	model := make(Model, len(c.enc.vars))
	for name, sp := range c.enc.vars {
		var hi, lo uint64
		for i := 0; i < int(sp.n); i++ {
			if c.sat.litTrue(c.enc.slab[int(sp.off)+i]) {
				if i >= 64 {
					hi |= 1 << uint(i-64)
				} else {
					lo |= 1 << uint(i)
				}
			}
		}
		model[name] = bitfield.New128(hi, lo, int(sp.n))
	}
	return model, Sat
}

// Stats returns the cumulative solver-effort counters for this context.
func (c *Ctx) Stats() Stats { return c.stats }

var ctxPool = sync.Pool{New: func() any { return NewCtx() }}

// Solve decides the conjunction of width-1 constraints. On Sat the model
// binds every variable mentioned in the constraints. It draws a warm
// context from a pool, so repeated solves amortize all encoder and
// solver storage.
func Solve(constraints []BV) (Model, Status) {
	c := ctxPool.Get().(*Ctx)
	c.Reset()
	if err := c.Assert(constraints...); err != nil {
		ctxPool.Put(c)
		return nil, Unknown
	}
	model, status := c.Check()
	ctxPool.Put(c)
	return model, status
}
