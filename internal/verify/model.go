package verify

import (
	"strconv"
	"strings"

	"netdebug/internal/verify/solver"
)

// ExtractVars returns, for every packet field the path extracted, the
// earliest extract-time variable — the "inst.field#k" free variable with
// the smallest k appearing anywhere in the path's constraints or final
// field state. Evaluated under the path's Model (solver.Eval leaves
// unconstrained variables at zero), these are the wire values a frame
// must carry to drive execution down this path — how the fuzz fleet
// turns Options.SolvePaths models into injected probe frames.
func (p *Path) ExtractVars() map[string]solver.VarBV {
	minK := map[string]int{}
	vars := map[string]solver.VarBV{}
	visit := func(v solver.VarBV) {
		i := strings.LastIndexByte(v.Name, '#')
		if i < 0 {
			return
		}
		k, err := strconv.Atoi(v.Name[i+1:])
		if err != nil {
			return
		}
		field := v.Name[:i]
		if cur, ok := minK[field]; !ok || k < cur {
			minK[field] = k
			vars[field] = v
		}
	}
	var walk func(t solver.BV)
	walk = func(t solver.BV) {
		switch t := t.(type) {
		case solver.VarBV:
			visit(t)
		case solver.BinBV:
			walk(t.A)
			walk(t.B)
		case solver.UnBV:
			walk(t.X)
		case solver.IteBV:
			walk(t.Cond)
			walk(t.A)
			walk(t.B)
		}
	}
	for _, c := range p.Constraints {
		walk(c)
	}
	for _, inst := range p.Fields {
		for _, f := range inst {
			if f != nil {
				walk(f)
			}
		}
	}
	return vars
}
