// Package verify is NetDebug's software formal-verification baseline, a
// stand-in for tools like p4v: it symbolically executes a compiled P4
// program (package ir) and checks properties over all feasible paths with
// the bit-vector solver (package solver).
//
// Crucially — and this is the paper's comparison point — verification
// operates on the program under the language's specification semantics. It
// proves or refutes properties of the *software specification*, and is
// blind to defects in the *hardware implementation*: a program whose
// parser rejects malformed packets verifies as correct even when the
// deployed compiler never implemented reject. NetDebug catches exactly the
// bugs this tool cannot.
package verify

import (
	"fmt"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/verify/solver"
)

// Options bounds exploration.
type Options struct {
	// MaxPaths caps the number of explored paths (default 4096).
	MaxPaths int
	// MaxStateVisits bounds repeated visits to the same parser state on a
	// single path, so cyclic parse graphs terminate (default 2).
	MaxStateVisits int
}

func (o *Options) fill() {
	if o.MaxPaths == 0 {
		o.MaxPaths = 4096
	}
	if o.MaxStateVisits == 0 {
		o.MaxStateVisits = 2
	}
}

// Path is one fully-explored execution path.
type Path struct {
	// Constraints is the path condition: width-1 terms all true.
	Constraints []solver.BV
	// Verdict is the parser outcome on this path.
	Verdict string // "accept" or "reject"
	// Dropped reports whether the pipeline dropped the packet (under
	// specification semantics a rejected packet is always dropped).
	Dropped bool
	// DropStage names the element that dropped, "" if forwarded.
	DropStage string
	// EgressAssigned reports whether any statement wrote egress_spec.
	EgressAssigned bool
	// ParserPath lists visited parser state names.
	ParserPath []string
	// Actions lists "table:action" choices made on this path.
	Actions []string
	// Fields exposes the symbolic final state: fields[inst][field].
	Fields [][]solver.BV
	// Valid exposes final header validity.
	Valid []bool
}

// state is the mutable symbolic machine state during exploration.
type state struct {
	fields     [][]solver.BV
	valid      []bool
	locals     []solver.BV
	args       [][]solver.BV
	cons       []solver.BV
	dropped    bool
	dropStage  string
	egressSet  bool
	parserPath []string
	actions    []string
	visits     map[int]int
}

func (s *state) clone() *state {
	ns := &state{
		dropped: s.dropped, dropStage: s.dropStage, egressSet: s.egressSet,
	}
	ns.fields = make([][]solver.BV, len(s.fields))
	for i := range s.fields {
		ns.fields[i] = append([]solver.BV(nil), s.fields[i]...)
	}
	ns.valid = append([]bool(nil), s.valid...)
	ns.locals = append([]solver.BV(nil), s.locals...)
	ns.args = make([][]solver.BV, len(s.args))
	for i := range s.args {
		ns.args[i] = append([]solver.BV(nil), s.args[i]...)
	}
	ns.cons = append([]solver.BV(nil), s.cons...)
	ns.parserPath = append([]string(nil), s.parserPath...)
	ns.actions = append([]string(nil), s.actions...)
	ns.visits = make(map[int]int, len(s.visits))
	for k, v := range s.visits {
		ns.visits[k] = v
	}
	return ns
}

// explorer drives symbolic execution.
type explorer struct {
	prog  *ir.Program
	opts  Options
	paths []*Path
	fresh int
	// truncated counts paths cut off by bounds (reported, not silently
	// dropped).
	truncated int
}

// Explore symbolically executes the program and returns every completed
// path. The error reports unsupported constructs.
func Explore(prog *ir.Program, opts Options) ([]*Path, int, error) {
	opts.fill()
	ex := &explorer{prog: prog, opts: opts}
	st := &state{visits: map[int]int{}}
	st.fields = make([][]solver.BV, len(prog.Instances))
	st.valid = make([]bool, len(prog.Instances))
	for i, inst := range prog.Instances {
		st.fields[i] = make([]solver.BV, len(inst.Type.Fields))
		for j, f := range inst.Type.Fields {
			// Metadata starts at zero; header fields are assigned fresh
			// variables at extract time.
			st.fields[i][j] = solver.ConstUint(0, f.Width)
		}
		st.valid[i] = inst.Metadata
	}
	if err := ex.runParser(st, prog.Parser.Start); err != nil {
		return nil, ex.truncated, err
	}
	return ex.paths, ex.truncated, nil
}

func (ex *explorer) freshVar(name string, w int) solver.BV {
	ex.fresh++
	return solver.Var(fmt.Sprintf("%s#%d", name, ex.fresh), w)
}

var errTooManyPaths = fmt.Errorf("verify: path budget exhausted")

func (ex *explorer) runParser(st *state, stateIdx int) error {
	if len(ex.paths) >= ex.opts.MaxPaths {
		return errTooManyPaths
	}
	switch stateIdx {
	case ir.StateAccept:
		return ex.runPipeline(st)
	case ir.StateReject:
		// Specification semantics: reject drops the packet.
		st.dropped = true
		st.dropStage = "parser"
		ex.finish(st, "reject")
		return nil
	}
	ps := ex.prog.Parser.States[stateIdx]
	if st.visits[stateIdx] >= ex.opts.MaxStateVisits {
		ex.truncated++
		return nil
	}
	st.visits[stateIdx]++
	st.parserPath = append(st.parserPath, ps.Name)
	for _, op := range ps.Ops {
		switch op := op.(type) {
		case *ir.Extract:
			inst := ex.prog.Instances[op.Inst]
			for j, f := range inst.Type.Fields {
				st.fields[op.Inst][j] = ex.freshVar(inst.Name+"."+f.Name, f.Width)
			}
			st.valid[op.Inst] = true
		case *ir.AssignField:
			v, err := ex.eval(st, op.RHS)
			if err != nil {
				return err
			}
			st.fields[op.Inst][op.Field] = v
		default:
			return fmt.Errorf("verify: unsupported parser op %T", op)
		}
	}
	return ex.runTransition(st, ps.Trans)
}

func (ex *explorer) runTransition(st *state, tr ir.Transition) error {
	if len(tr.Keys) == 0 {
		return ex.runParser(st, tr.Default)
	}
	keys := make([]solver.BV, len(tr.Keys))
	for i, k := range tr.Keys {
		v, err := ex.eval(st, k)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	// Each case forks a path constrained to match it and to mismatch all
	// earlier cases; the default path mismatches everything.
	negated := []solver.BV{}
	for _, c := range tr.Cases {
		branch := st.clone()
		branch.cons = append(branch.cons, negated...)
		for i := range keys {
			branch.cons = append(branch.cons, maskEq(keys[i], c.Values[i], c.Masks[i]))
		}
		if err := ex.runParser(branch, c.Next); err != nil {
			return err
		}
		// Build the negation of this case for subsequent branches: the
		// conjunction of per-key matches must be false.
		negated = append(negated, solver.Not(conj(matchTerms(keys, c))))
	}
	def := st.clone()
	def.cons = append(def.cons, negated...)
	return ex.runParser(def, tr.Default)
}

func matchTerms(keys []solver.BV, c ir.TransCase) []solver.BV {
	out := make([]solver.BV, len(keys))
	for i := range keys {
		out[i] = maskEq(keys[i], c.Values[i], c.Masks[i])
	}
	return out
}

// conj ANDs width-1 terms.
func conj(terms []solver.BV) solver.BV {
	if len(terms) == 0 {
		return solver.True()
	}
	acc := terms[0]
	for _, t := range terms[1:] {
		acc = solver.And(acc, t)
	}
	return acc
}

// maskEq builds key&mask == value&mask.
func maskEq(key solver.BV, value, mask bitfield.Value) solver.BV {
	mk := solver.And(key, solver.Const(mask))
	return solver.Eq(mk, solver.Const(value.And(mask)))
}

func (ex *explorer) runPipeline(st *state) error {
	return ex.runControls(st, 0)
}

// runControls executes controls[idx:]; forking statements recurse with a
// continuation-style walker.
func (ex *explorer) runControls(st *state, idx int) error {
	if idx >= len(ex.prog.Controls) {
		ex.finish(st, "accept")
		return nil
	}
	c := ex.prog.Controls[idx]
	return ex.runStmts(st, c.Apply, c.Name, func(st *state) error {
		return ex.runControls(st, idx+1)
	})
}

// runStmts symbolically executes stmts then calls k with each resulting
// path state.
func (ex *explorer) runStmts(st *state, stmts []ir.Stmt, stage string, k func(*state) error) error {
	if len(stmts) == 0 {
		return k(st)
	}
	s, rest := stmts[0], stmts[1:]
	next := func(st *state) error { return ex.runStmts(st, rest, stage, k) }
	switch s := s.(type) {
	case *ir.AssignField:
		v, err := ex.eval(st, s.RHS)
		if err != nil {
			return err
		}
		st.fields[s.Inst][s.Field] = v
		if s.Inst == ex.prog.StdMeta && s.Field == ir.StdMetaEgressSpec {
			st.egressSet = true
		}
		return next(st)
	case *ir.AssignLocal:
		v, err := ex.eval(st, s.RHS)
		if err != nil {
			return err
		}
		for len(st.locals) <= s.Idx {
			st.locals = append(st.locals, nil)
		}
		st.locals[s.Idx] = v
		return next(st)
	case *ir.SetValid:
		st.valid[s.Inst] = s.Valid
		return next(st)
	case *ir.MarkToDrop:
		if !st.dropped {
			st.dropped = true
			st.dropStage = stage
		}
		return next(st)
	case *ir.If:
		cond, err := ex.eval(st, s.Cond)
		if err != nil {
			return err
		}
		thenSt := st.clone()
		thenSt.cons = append(thenSt.cons, cond)
		if err := ex.runStmts(thenSt, s.Then, stage, next); err != nil {
			return err
		}
		elseSt := st
		elseSt.cons = append(elseSt.cons, solver.Not(cond))
		return ex.runStmts(elseSt, s.Else, stage, next)
	case *ir.ApplyTable:
		return ex.applyTable(st, s.Table, stage, next)
	case *ir.CallAction:
		args := make([]solver.BV, len(s.Args))
		for i, a := range s.Args {
			v, err := ex.eval(st, a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		st.args = append(st.args, args)
		return ex.runStmts(st, s.Action.Body, stage, func(st *state) error {
			st.args = st.args[:len(st.args)-1]
			return next(st)
		})
	case *ir.Return:
		// Return exits the enclosing body: skip the rest of stmts.
		return k(st)
	}
	return fmt.Errorf("verify: unsupported statement %T", s)
}

// applyTable forks one path per allowed action (table contents are
// unknown, so any row may match — the standard havoc model) plus the
// default action for a miss.
func (ex *explorer) applyTable(st *state, t *ir.Table, stage string, k func(*state) error) error {
	run := func(base *state, a *ir.Action, args []solver.BV, label string) error {
		base.actions = append(base.actions, t.Name+":"+label)
		base.args = append(base.args, args)
		return ex.runStmts(base, a.Body, stage, func(st *state) error {
			st.args = st.args[:len(st.args)-1]
			return k(st)
		})
	}
	for _, a := range t.Actions {
		branch := st.clone()
		args := make([]solver.BV, len(a.Params))
		for i, p := range a.Params {
			args[i] = ex.freshVar(t.Name+"."+a.Name+"."+p.Name, p.Width)
		}
		if err := run(branch, a, args, a.Name); err != nil {
			return err
		}
	}
	// Miss: default action with its bound constant arguments.
	miss := st.clone()
	args := make([]solver.BV, len(t.Default.Args))
	for i, v := range t.Default.Args {
		args[i] = solver.Const(v)
	}
	return run(miss, t.Default.Action, args, t.Default.Action.Name+"(default)")
}

func (ex *explorer) finish(st *state, verdict string) {
	if len(ex.paths) >= ex.opts.MaxPaths {
		ex.truncated++
		return
	}
	ex.paths = append(ex.paths, &Path{
		Constraints:    st.cons,
		Verdict:        verdict,
		Dropped:        st.dropped,
		DropStage:      st.dropStage,
		EgressAssigned: st.egressSet,
		ParserPath:     st.parserPath,
		Actions:        st.actions,
		Fields:         st.fields,
		Valid:          st.valid,
	})
}

// eval translates an IR expression to a solver term under the current
// symbolic state.
func (ex *explorer) eval(st *state, e ir.Expr) (solver.BV, error) {
	switch e := e.(type) {
	case ir.Const:
		return solver.Const(e.Val), nil
	case ir.FieldRef:
		return st.fields[e.Inst][e.Field], nil
	case ir.LocalRef:
		if e.Idx < len(st.locals) && st.locals[e.Idx] != nil {
			return st.locals[e.Idx], nil
		}
		return solver.ConstUint(0, e.W), nil
	case ir.ParamRef:
		return st.args[len(st.args)-1][e.Idx], nil
	case ir.IsValid:
		if st.valid[e.Inst] {
			return solver.True(), nil
		}
		return solver.False(), nil
	case ir.Unary:
		x, err := ex.eval(st, e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case ir.OpNot:
			return solver.Un(solver.OpNot, x), nil
		case ir.OpBitNot:
			return solver.Un(solver.OpBitNot, x), nil
		case ir.OpNeg:
			return solver.Un(solver.OpNeg, x), nil
		}
		return nil, fmt.Errorf("verify: bad unary op")
	case ir.Binary:
		a, err := ex.eval(st, e.X)
		if err != nil {
			return nil, err
		}
		b, err := ex.eval(st, e.Y)
		if err != nil {
			return nil, err
		}
		opMap := map[ir.BinOp]solver.Op{
			ir.OpAdd: solver.OpAdd, ir.OpSub: solver.OpSub, ir.OpMul: solver.OpMul,
			ir.OpAnd: solver.OpAnd, ir.OpOr: solver.OpOr, ir.OpXor: solver.OpXor,
			ir.OpShl: solver.OpShl, ir.OpShr: solver.OpShr,
			ir.OpEq: solver.OpEq, ir.OpNeq: solver.OpNeq,
			ir.OpLt: solver.OpUlt, ir.OpLe: solver.OpUle,
			ir.OpGt: solver.OpUgt, ir.OpGe: solver.OpUge,
		}
		if e.Op == ir.OpLAnd {
			return solver.And(a, b), nil
		}
		if e.Op == ir.OpLOr {
			return solver.Bin(solver.OpOr, a, b), nil
		}
		op, ok := opMap[e.Op]
		if !ok {
			return nil, fmt.Errorf("verify: bad binary op %v", e.Op)
		}
		return solver.Bin(op, a, b), nil
	case ir.Ternary:
		c, err := ex.eval(st, e.Cond)
		if err != nil {
			return nil, err
		}
		a, err := ex.eval(st, e.A)
		if err != nil {
			return nil, err
		}
		b, err := ex.eval(st, e.B)
		if err != nil {
			return nil, err
		}
		return solver.Ite(c, a, b), nil
	}
	return nil, fmt.Errorf("verify: unsupported expression %T", e)
}
