// Package verify is NetDebug's software formal-verification baseline, a
// stand-in for tools like p4v: it symbolically executes a compiled P4
// program (package ir) and checks properties over all feasible paths with
// the bit-vector solver (package solver).
//
// Crucially — and this is the paper's comparison point — verification
// operates on the program under the language's specification semantics. It
// proves or refutes properties of the *software specification*, and is
// blind to defects in the *hardware implementation*: a program whose
// parser rejects malformed packets verifies as correct even when the
// deployed compiler never implemented reject. NetDebug catches exactly the
// bugs this tool cannot.
//
// Exploration is parallel: branch subtrees are handed to a bounded worker
// pool (Options.Workers), each worker carrying its own solver context so
// paths solve concurrently. Sibling branches share their constraint
// prefix through the context's scoped push/pop API instead of re-encoding
// it from scratch. The output contract is strict determinism — the same
// paths, in the same order, with the same models, at any worker count.
// Whether exploration fails is equally deterministic (an unsupported
// construct is always reached; a budget overflow always fires), but when
// several lanes fail concurrently the error reported is the first one
// recorded, which may differ run to run.
package verify

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"netdebug/internal/bitfield"
	"netdebug/internal/p4/ir"
	"netdebug/internal/verify/solver"
)

// Options bounds exploration.
type Options struct {
	// MaxPaths caps the number of completed paths (default 4096). Paths
	// pruned as infeasible by SolvePaths count against the budget too —
	// it bounds exploration work, not output size. Exceeding the budget
	// is an error, and deterministically so: Explore fails if and only
	// if the program completes more than MaxPaths paths, at any worker
	// count.
	MaxPaths int
	// MaxStateVisits bounds repeated visits to the same parser state on a
	// single path, so cyclic parse graphs terminate (default 2).
	MaxStateVisits int
	// Workers bounds the branch-exploration worker pool (default 1,
	// sequential). Output — path order, constraints, models — is
	// identical at any worker count.
	Workers int
	// SolvePaths solves every completed path on its worker's solver
	// context: infeasible paths are dropped (counted in
	// Exploration.Pruned) and feasible ones carry a satisfying Model.
	SolvePaths bool
}

func (o *Options) fill() {
	if o.MaxPaths == 0 {
		o.MaxPaths = 4096
	}
	if o.MaxStateVisits == 0 {
		o.MaxStateVisits = 2
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
}

// Path is one fully-explored execution path.
type Path struct {
	// ID is the path's index in the deterministic output order (the
	// sequential depth-first order, independent of Options.Workers).
	ID int
	// Constraints is the path condition: width-1 terms all true.
	Constraints []solver.BV
	// Verdict is the parser outcome on this path.
	Verdict string // "accept" or "reject"
	// Dropped reports whether the pipeline dropped the packet (under
	// specification semantics a rejected packet is always dropped).
	Dropped bool
	// DropStage names the element that dropped, "" if forwarded.
	DropStage string
	// EgressAssigned reports whether any statement wrote egress_spec.
	EgressAssigned bool
	// ParserPath lists visited parser state names.
	ParserPath []string
	// Actions lists "table:action" choices made on this path.
	Actions []string
	// Fields exposes the symbolic final state: fields[inst][field].
	Fields [][]solver.BV
	// Valid exposes final header validity.
	Valid []bool
	// Model is a satisfying assignment of Constraints, present when
	// Options.SolvePaths is set and the path solved Sat (a nil Model
	// with SolvePaths set means the solver returned Unknown).
	Model solver.Model
}

// Exploration is the full result of a symbolic-execution run.
type Exploration struct {
	// Paths holds every completed path in deterministic order.
	Paths []*Path
	// Truncated counts paths cut off by bounds (reported, not silently
	// dropped).
	Truncated int
	// Pruned counts infeasible paths dropped by SolvePaths.
	Pruned int
	// Solver aggregates solver effort across every worker context.
	Solver solver.Stats
}

// state is the mutable symbolic machine state during exploration.
type state struct {
	fields     [][]solver.BV
	valid      []bool
	locals     []solver.BV
	args       [][]solver.BV
	cons       []solver.BV
	dropped    bool
	dropStage  string
	egressSet  bool
	parserPath []string
	actions    []string
	visits     map[int]int
	// fresh numbers this path's symbolic variables. It is path-local so
	// variable names depend only on the path's own history, never on
	// exploration order across paths.
	fresh int
	// decisions encodes the branch taken at every fork (two bytes per
	// fork, big-endian); its lexicographic order is exactly the
	// sequential depth-first path order, which is how parallel results
	// are put back in deterministic order.
	decisions []byte
}

func (s *state) clone() *state {
	ns := &state{
		dropped: s.dropped, dropStage: s.dropStage, egressSet: s.egressSet,
		fresh: s.fresh,
	}
	ns.fields = make([][]solver.BV, len(s.fields))
	for i := range s.fields {
		ns.fields[i] = append([]solver.BV(nil), s.fields[i]...)
	}
	ns.valid = append([]bool(nil), s.valid...)
	ns.locals = append([]solver.BV(nil), s.locals...)
	ns.args = make([][]solver.BV, len(s.args))
	for i := range s.args {
		ns.args[i] = append([]solver.BV(nil), s.args[i]...)
	}
	ns.cons = append([]solver.BV(nil), s.cons...)
	ns.parserPath = append([]string(nil), s.parserPath...)
	ns.actions = append([]string(nil), s.actions...)
	ns.visits = make(map[int]int, len(s.visits))
	for k, v := range s.visits {
		ns.visits[k] = v
	}
	ns.decisions = append([]byte(nil), s.decisions...)
	return ns
}

func (s *state) decide(i int) {
	s.decisions = append(s.decisions, byte(i>>8), byte(i))
}

// worker is one exploration lane: a goroutine slot plus its private
// solver context (nil unless Options.SolvePaths).
type worker struct {
	ctx *solver.Ctx
}

// explorer drives symbolic execution.
type explorer struct {
	prog *ir.Program
	opts Options

	// spare holds idle workers a fork can hand a branch subtree to; nil
	// when running sequentially.
	spare   chan *worker
	workers []*worker
	wg      sync.WaitGroup

	mu       sync.Mutex
	finished []finishedPath
	firstErr error

	npaths    atomic.Int64
	truncated atomic.Int64
	pruned    atomic.Int64
	aborted   atomic.Bool
}

type finishedPath struct {
	key string
	p   *Path
}

// Explore symbolically executes the program and returns every completed
// path plus the truncated-path count. The error reports unsupported
// constructs.
func Explore(prog *ir.Program, opts Options) ([]*Path, int, error) {
	exp, err := ExploreWithStats(prog, opts)
	if err != nil {
		return nil, exp.Truncated, err
	}
	return exp.Paths, exp.Truncated, nil
}

// ExploreWithStats is Explore with the full Exploration result: pruning
// counts and aggregated solver-effort statistics. On error the returned
// Exploration still carries the counters observed before the abort.
func ExploreWithStats(prog *ir.Program, opts Options) (*Exploration, error) {
	opts.fill()
	ex := &explorer{prog: prog, opts: opts}
	if opts.Workers > 1 {
		ex.spare = make(chan *worker, opts.Workers-1)
		for i := 0; i < opts.Workers-1; i++ {
			w := ex.newWorker()
			ex.spare <- w
		}
	}
	w := ex.newWorker()

	st := &state{visits: map[int]int{}}
	st.fields = make([][]solver.BV, len(prog.Instances))
	st.valid = make([]bool, len(prog.Instances))
	for i, inst := range prog.Instances {
		st.fields[i] = make([]solver.BV, len(inst.Type.Fields))
		for j, f := range inst.Type.Fields {
			// Metadata starts at zero; header fields are assigned fresh
			// variables at extract time.
			st.fields[i][j] = solver.ConstUint(0, f.Width)
		}
		st.valid[i] = inst.Metadata
	}
	if err := ex.runParser(w, st, prog.Parser.Start); err != nil {
		ex.fail(err)
	}
	ex.wg.Wait()

	exp := &Exploration{
		Truncated: int(ex.truncated.Load()),
		Pruned:    int(ex.pruned.Load()),
	}
	for _, wk := range ex.workers {
		if wk.ctx != nil {
			exp.Solver.Add(wk.ctx.Stats())
		}
	}
	if err := ex.err(); err != nil {
		return exp, err
	}
	sort.Slice(ex.finished, func(i, j int) bool { return ex.finished[i].key < ex.finished[j].key })
	exp.Paths = make([]*Path, len(ex.finished))
	for i, f := range ex.finished {
		f.p.ID = i
		exp.Paths[i] = f.p
	}
	return exp, nil
}

func (ex *explorer) newWorker() *worker {
	w := &worker{}
	if ex.opts.SolvePaths {
		w.ctx = solver.NewCtx()
	}
	ex.workers = append(ex.workers, w)
	return w
}

var (
	errTooManyPaths = fmt.Errorf("verify: path budget exhausted")
	// errAbort unwinds a lane after another lane already recorded the
	// real failure.
	errAbort = errors.New("verify: exploration aborted")
)

// fail records the first real error and aborts every lane.
func (ex *explorer) fail(err error) error {
	if err == nil || err == errAbort {
		return err
	}
	ex.mu.Lock()
	if ex.firstErr == nil {
		ex.firstErr = err
	}
	ex.mu.Unlock()
	ex.aborted.Store(true)
	return err
}

func (ex *explorer) err() error {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.firstErr
}

// fork dispatches one branch subtree. The branch state already carries
// its decision bytes; newCons of its trailing constraints are new
// relative to the parent. If a spare worker is idle the subtree runs on
// it (replaying the full constraint prefix into its context once);
// otherwise it runs inline on w inside a solver scope, sharing the
// already-encoded prefix.
func (ex *explorer) fork(w *worker, branch *state, newCons int, fn func(*worker, *state) error) error {
	if ex.spare != nil {
		select {
		case w2 := <-ex.spare:
			ex.wg.Add(1)
			go func() {
				defer ex.wg.Done()
				if w2.ctx != nil {
					w2.ctx.Reset()
					w2.ctx.Assert(branch.cons...)
				}
				if err := fn(w2, branch); err != nil {
					ex.fail(err)
				}
				ex.spare <- w2
			}()
			return nil
		default:
		}
	}
	if w.ctx == nil || newCons == 0 {
		return fn(w, branch)
	}
	w.ctx.Push()
	w.ctx.Assert(branch.cons[len(branch.cons)-newCons:]...)
	defer w.ctx.Pop()
	return fn(w, branch)
}

func (ex *explorer) freshVar(st *state, name string, w int) solver.BV {
	st.fresh++
	return solver.Var(fmt.Sprintf("%s#%d", name, st.fresh), w)
}

func (ex *explorer) runParser(w *worker, st *state, stateIdx int) error {
	if ex.aborted.Load() {
		return errAbort
	}
	switch stateIdx {
	case ir.StateAccept:
		return ex.runPipeline(w, st)
	case ir.StateReject:
		// Specification semantics: reject drops the packet.
		st.dropped = true
		st.dropStage = "parser"
		ex.finish(w, st, "reject")
		return nil
	}
	ps := ex.prog.Parser.States[stateIdx]
	if st.visits[stateIdx] >= ex.opts.MaxStateVisits {
		ex.truncated.Add(1)
		return nil
	}
	st.visits[stateIdx]++
	st.parserPath = append(st.parserPath, ps.Name)
	for _, op := range ps.Ops {
		switch op := op.(type) {
		case *ir.Extract:
			inst := ex.prog.Instances[op.Inst]
			for j, f := range inst.Type.Fields {
				st.fields[op.Inst][j] = ex.freshVar(st, inst.Name+"."+f.Name, f.Width)
			}
			st.valid[op.Inst] = true
		case *ir.AssignField:
			v, err := ex.eval(st, op.RHS)
			if err != nil {
				return err
			}
			st.fields[op.Inst][op.Field] = v
		default:
			return fmt.Errorf("verify: unsupported parser op %T", op)
		}
	}
	return ex.runTransition(w, st, ps.Trans)
}

func (ex *explorer) runTransition(w *worker, st *state, tr ir.Transition) error {
	if len(tr.Keys) == 0 {
		return ex.runParser(w, st, tr.Default)
	}
	keys := make([]solver.BV, len(tr.Keys))
	for i, k := range tr.Keys {
		v, err := ex.eval(st, k)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	// Each case forks a path constrained to match it and to mismatch all
	// earlier cases; the default path mismatches everything.
	negated := []solver.BV{}
	for ci, c := range tr.Cases {
		branch := st.clone()
		branch.decide(ci)
		n0 := len(branch.cons)
		branch.cons = append(branch.cons, negated...)
		for i := range keys {
			branch.cons = append(branch.cons, maskEq(keys[i], c.Values[i], c.Masks[i]))
		}
		next := c.Next
		err := ex.fork(w, branch, len(branch.cons)-n0, func(w *worker, st *state) error {
			return ex.runParser(w, st, next)
		})
		if err != nil {
			return err
		}
		// Build the negation of this case for subsequent branches: the
		// conjunction of per-key matches must be false.
		negated = append(negated, solver.Not(conj(matchTerms(keys, c))))
	}
	def := st.clone()
	def.decide(len(tr.Cases))
	n0 := len(def.cons)
	def.cons = append(def.cons, negated...)
	return ex.fork(w, def, len(def.cons)-n0, func(w *worker, st *state) error {
		return ex.runParser(w, st, tr.Default)
	})
}

func matchTerms(keys []solver.BV, c ir.TransCase) []solver.BV {
	out := make([]solver.BV, len(keys))
	for i := range keys {
		out[i] = maskEq(keys[i], c.Values[i], c.Masks[i])
	}
	return out
}

// conj ANDs width-1 terms.
func conj(terms []solver.BV) solver.BV {
	if len(terms) == 0 {
		return solver.True()
	}
	acc := terms[0]
	for _, t := range terms[1:] {
		acc = solver.And(acc, t)
	}
	return acc
}

// maskEq builds key&mask == value&mask.
func maskEq(key solver.BV, value, mask bitfield.Value) solver.BV {
	mk := solver.And(key, solver.Const(mask))
	return solver.Eq(mk, solver.Const(value.And(mask)))
}

func (ex *explorer) runPipeline(w *worker, st *state) error {
	return ex.runControls(w, st, 0)
}

// runControls executes controls[idx:]; forking statements recurse with a
// continuation-style walker.
func (ex *explorer) runControls(w *worker, st *state, idx int) error {
	if idx >= len(ex.prog.Controls) {
		ex.finish(w, st, "accept")
		return nil
	}
	c := ex.prog.Controls[idx]
	return ex.runStmts(w, st, c.Apply, c.Name, func(w *worker, st *state) error {
		return ex.runControls(w, st, idx+1)
	})
}

// runStmts symbolically executes stmts then calls k with each resulting
// path state.
func (ex *explorer) runStmts(w *worker, st *state, stmts []ir.Stmt, stage string, k func(*worker, *state) error) error {
	if ex.aborted.Load() {
		return errAbort
	}
	if len(stmts) == 0 {
		return k(w, st)
	}
	s, rest := stmts[0], stmts[1:]
	next := func(w *worker, st *state) error { return ex.runStmts(w, st, rest, stage, k) }
	switch s := s.(type) {
	case *ir.AssignField:
		v, err := ex.eval(st, s.RHS)
		if err != nil {
			return err
		}
		st.fields[s.Inst][s.Field] = v
		if s.Inst == ex.prog.StdMeta && s.Field == ir.StdMetaEgressSpec {
			st.egressSet = true
		}
		return next(w, st)
	case *ir.AssignLocal:
		v, err := ex.eval(st, s.RHS)
		if err != nil {
			return err
		}
		for len(st.locals) <= s.Idx {
			st.locals = append(st.locals, nil)
		}
		st.locals[s.Idx] = v
		return next(w, st)
	case *ir.SetValid:
		st.valid[s.Inst] = s.Valid
		return next(w, st)
	case *ir.MarkToDrop:
		if !st.dropped {
			st.dropped = true
			st.dropStage = stage
		}
		return next(w, st)
	case *ir.If:
		cond, err := ex.eval(st, s.Cond)
		if err != nil {
			return err
		}
		thenSt := st.clone()
		thenSt.decide(0)
		thenSt.cons = append(thenSt.cons, cond)
		thenBody := s.Then
		err = ex.fork(w, thenSt, 1, func(w *worker, st *state) error {
			return ex.runStmts(w, st, thenBody, stage, next)
		})
		if err != nil {
			return err
		}
		elseSt := st
		elseSt.decide(1)
		elseSt.cons = append(elseSt.cons, solver.Not(cond))
		elseBody := s.Else
		return ex.fork(w, elseSt, 1, func(w *worker, st *state) error {
			return ex.runStmts(w, st, elseBody, stage, next)
		})
	case *ir.ApplyTable:
		return ex.applyTable(w, st, s.Table, stage, next)
	case *ir.CallAction:
		args := make([]solver.BV, len(s.Args))
		for i, a := range s.Args {
			v, err := ex.eval(st, a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		st.args = append(st.args, args)
		return ex.runStmts(w, st, s.Action.Body, stage, func(w *worker, st *state) error {
			st.args = st.args[:len(st.args)-1]
			return next(w, st)
		})
	case *ir.Return:
		// Return exits the enclosing body: skip the rest of stmts.
		return k(w, st)
	}
	return fmt.Errorf("verify: unsupported statement %T", s)
}

// applyTable forks one path per allowed action (table contents are
// unknown, so any row may match — the standard havoc model) plus the
// default action for a miss.
func (ex *explorer) applyTable(w *worker, st *state, t *ir.Table, stage string, k func(*worker, *state) error) error {
	run := func(w *worker, base *state, a *ir.Action, args []solver.BV, label string) error {
		base.actions = append(base.actions, t.Name+":"+label)
		base.args = append(base.args, args)
		return ex.runStmts(w, base, a.Body, stage, func(w *worker, st *state) error {
			st.args = st.args[:len(st.args)-1]
			return k(w, st)
		})
	}
	for ai, a := range t.Actions {
		branch := st.clone()
		branch.decide(ai)
		args := make([]solver.BV, len(a.Params))
		for i, p := range a.Params {
			args[i] = ex.freshVar(branch, t.Name+"."+a.Name+"."+p.Name, p.Width)
		}
		action, label := a, a.Name
		err := ex.fork(w, branch, 0, func(w *worker, st *state) error {
			return run(w, st, action, args, label)
		})
		if err != nil {
			return err
		}
	}
	// Miss: default action with its bound constant arguments.
	miss := st.clone()
	miss.decide(len(t.Actions))
	args := make([]solver.BV, len(t.Default.Args))
	for i, v := range t.Default.Args {
		args[i] = solver.Const(v)
	}
	return ex.fork(w, miss, 0, func(w *worker, st *state) error {
		return run(w, st, t.Default.Action, args, t.Default.Action.Name+"(default)")
	})
}

// finish completes one path: under SolvePaths it is checked on the
// worker's context (whose asserted scope is exactly this path's
// constraint set), infeasible paths are pruned, feasible ones keep their
// model.
//
// The budget is charged here, before the feasibility check, so MaxPaths
// bounds exploration *work* — including paths that would have been
// pruned — and overflow is a deterministic property of the program:
// whether the (MaxPaths+1)-th completion happens does not depend on
// scheduling, so Explore errors at every worker count or at none.
func (ex *explorer) finish(w *worker, st *state, verdict string) {
	if ex.npaths.Add(1) > int64(ex.opts.MaxPaths) {
		ex.truncated.Add(1)
		ex.fail(errTooManyPaths)
		return
	}
	var model solver.Model
	if w.ctx != nil {
		m, status := w.ctx.Check()
		switch status {
		case solver.Unsat:
			ex.pruned.Add(1)
			return
		case solver.Sat:
			model = m
		}
		// Unknown: keep the path; Model stays nil.
	}
	p := &Path{
		Constraints:    st.cons,
		Verdict:        verdict,
		Dropped:        st.dropped,
		DropStage:      st.dropStage,
		EgressAssigned: st.egressSet,
		ParserPath:     st.parserPath,
		Actions:        st.actions,
		Fields:         st.fields,
		Valid:          st.valid,
		Model:          model,
	}
	ex.mu.Lock()
	ex.finished = append(ex.finished, finishedPath{key: string(st.decisions), p: p})
	ex.mu.Unlock()
}

// eval translates an IR expression to a solver term under the current
// symbolic state.
func (ex *explorer) eval(st *state, e ir.Expr) (solver.BV, error) {
	switch e := e.(type) {
	case ir.Const:
		return solver.Const(e.Val), nil
	case ir.FieldRef:
		return st.fields[e.Inst][e.Field], nil
	case ir.LocalRef:
		if e.Idx < len(st.locals) && st.locals[e.Idx] != nil {
			return st.locals[e.Idx], nil
		}
		return solver.ConstUint(0, e.W), nil
	case ir.ParamRef:
		return st.args[len(st.args)-1][e.Idx], nil
	case ir.IsValid:
		if st.valid[e.Inst] {
			return solver.True(), nil
		}
		return solver.False(), nil
	case ir.Unary:
		x, err := ex.eval(st, e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case ir.OpNot:
			return solver.Un(solver.OpNot, x), nil
		case ir.OpBitNot:
			return solver.Un(solver.OpBitNot, x), nil
		case ir.OpNeg:
			return solver.Un(solver.OpNeg, x), nil
		}
		return nil, fmt.Errorf("verify: bad unary op")
	case ir.Binary:
		a, err := ex.eval(st, e.X)
		if err != nil {
			return nil, err
		}
		b, err := ex.eval(st, e.Y)
		if err != nil {
			return nil, err
		}
		opMap := map[ir.BinOp]solver.Op{
			ir.OpAdd: solver.OpAdd, ir.OpSub: solver.OpSub, ir.OpMul: solver.OpMul,
			ir.OpAnd: solver.OpAnd, ir.OpOr: solver.OpOr, ir.OpXor: solver.OpXor,
			ir.OpShl: solver.OpShl, ir.OpShr: solver.OpShr,
			ir.OpEq: solver.OpEq, ir.OpNeq: solver.OpNeq,
			ir.OpLt: solver.OpUlt, ir.OpLe: solver.OpUle,
			ir.OpGt: solver.OpUgt, ir.OpGe: solver.OpUge,
		}
		if e.Op == ir.OpLAnd {
			return solver.And(a, b), nil
		}
		if e.Op == ir.OpLOr {
			return solver.Bin(solver.OpOr, a, b), nil
		}
		op, ok := opMap[e.Op]
		if !ok {
			return nil, fmt.Errorf("verify: bad binary op %v", e.Op)
		}
		return solver.Bin(op, a, b), nil
	case ir.Ternary:
		c, err := ex.eval(st, e.Cond)
		if err != nil {
			return nil, err
		}
		a, err := ex.eval(st, e.A)
		if err != nil {
			return nil, err
		}
		b, err := ex.eval(st, e.B)
		if err != nil {
			return nil, err
		}
		return solver.Ite(c, a, b), nil
	}
	return nil, fmt.Errorf("verify: unsupported expression %T", e)
}
