package verify

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/verify/solver"
)

// synthProgram builds a many-path program from a seed: a chain of
// arithmetic if/else splits followed by a havoc table, giving
// 2^ifs * (actions+1) paths whose conditions exercise the solver's
// adders and comparators. The same seed always yields the same program.
func synthProgram(seed int64, ifs int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString(`
header flow_t { bit<8> f0; bit<8> f1; bit<8> f2; bit<8> f3; }
struct hs { flow_t flow; }
parser P(packet_in pkt, out hs hdr, inout standard_metadata_t sm) {
  state start { pkt.extract(hdr.flow); transition accept; }
}
control I(inout hs hdr, inout standard_metadata_t sm) {
  action bump(bit<8> d) { hdr.flow.f2 = hdr.flow.f2 + d; }
  action drop() { mark_to_drop(); }
  table steer {
    key = { hdr.flow.f0: exact; }
    actions = { bump; drop; NoAction; }
    default_action = NoAction();
  }
  apply {
    sm.egress_spec = 9w1;
`)
	ops := []string{"<", "<=", ">", ">="}
	for i := 0; i < ifs; i++ {
		fa := rng.Intn(4)
		fb := rng.Intn(4)
		op := ops[rng.Intn(len(ops))]
		k := rng.Intn(1 << 8)
		fmt.Fprintf(&b, "    if (hdr.flow.f%d + hdr.flow.f%d %s 8w%d) { hdr.flow.f3 = hdr.flow.f3 + 8w1; } else { hdr.flow.f3 = hdr.flow.f3 - 8w3; }\n",
			fa, fb, op, k)
	}
	b.WriteString(`    steer.apply();
  }
}
control D(packet_out pkt, in hs hdr) { apply { pkt.emit(hdr.flow); } }
S(P(), I(), D()) main;
`)
	return b.String()
}

// dumpExploration renders every observable of an exploration into one
// string, so runs can be compared byte-for-byte.
func dumpExploration(exp *Exploration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "paths=%d truncated=%d pruned=%d\n", len(exp.Paths), exp.Truncated, exp.Pruned)
	for _, p := range exp.Paths {
		fmt.Fprintf(&b, "#%d verdict=%s dropped=%v stage=%q egress=%v parser=%v actions=%v valid=%v\n",
			p.ID, p.Verdict, p.Dropped, p.DropStage, p.EgressAssigned, p.ParserPath, p.Actions, p.Valid)
		for _, c := range p.Constraints {
			fmt.Fprintf(&b, "  cons %s\n", c)
		}
		for _, inst := range p.Fields {
			for _, f := range inst {
				fmt.Fprintf(&b, "  field %s\n", f)
			}
		}
		names := make([]string, 0, len(p.Model))
		for name := range p.Model {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "  model %s=%s\n", name, p.Model[name])
		}
	}
	return b.String()
}

// TestExploreDeterministicAcrossWorkers is the contract the parallel
// explorer ships under: identical path order, constraints, and models at
// every worker count, for the shipped flows and seeded synthetic
// programs.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	sources := map[string]string{
		"router":      p4test.Router,
		"firewall":    p4test.Firewall,
		"routersplit": p4test.RouterSplit,
		"synth42":     synthProgram(42, 5),
		"synth7":      synthProgram(7, 4),
	}
	for name, src := range sources {
		prog := mustCompile(t, src)
		for _, solve := range []bool{false, true} {
			base := ""
			for _, workers := range []int{1, 2, 3, 8} {
				exp, err := ExploreWithStats(prog, Options{Workers: workers, SolvePaths: solve})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				dump := dumpExploration(exp)
				if workers == 1 {
					base = dump
					continue
				}
				if dump != base {
					t.Fatalf("%s solve=%v: workers=%d output diverges from sequential\n--- got ---\n%s\n--- want ---\n%s",
						name, solve, workers, dump, base)
				}
			}
			if base == "" {
				t.Fatalf("%s: no baseline", name)
			}
		}
	}
}

// TestCheckDeterministicAcrossWorkers: property verdicts and
// counterexample models must not depend on the worker count either.
func TestCheckDeterministicAcrossWorkers(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	props := []Property{PropRejectedDropped, PropForwardedHasEgress, PropFieldNonZeroOnForward("ipv4", "ttl")}
	for _, prop := range props {
		var base string
		for _, workers := range []int{1, 4} {
			res, err := Check(prog, prop, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			names := make([]string, 0, len(res.Counterexample))
			for n := range res.Counterexample {
				names = append(names, n)
			}
			sort.Strings(names)
			var b strings.Builder
			fmt.Fprintf(&b, "%v %v", res.Holds, res.Inconclusive)
			if res.Path != nil {
				fmt.Fprintf(&b, " path=%d", res.Path.ID)
			}
			for _, n := range names {
				fmt.Fprintf(&b, " %s=%s", n, res.Counterexample[n])
			}
			if workers == 1 {
				base = b.String()
			} else if b.String() != base {
				t.Fatalf("%s: workers=4 result %q != sequential %q", prop.Name, b.String(), base)
			}
		}
	}
}

// TestExploreParallelRace drives several concurrent parallel
// explorations; run under -race this checks the worker pool, the scoped
// solver contexts, and the shared counters for data races.
func TestExploreParallelRace(t *testing.T) {
	progs := []*ir.Program{
		mustCompile(t, p4test.Router),
		mustCompile(t, p4test.Firewall),
		mustCompile(t, synthProgram(3, 4)),
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, prog := range progs {
			wg.Add(1)
			go func(prog *ir.Program) {
				defer wg.Done()
				if _, err := ExploreWithStats(prog, Options{Workers: 8, SolvePaths: true}); err != nil {
					t.Error(err)
				}
			}(prog)
		}
	}
	wg.Wait()
}

// TestRejectReachableParallel: the SolvePaths-based rewrite must agree
// with the historical answers at any worker count.
func TestRejectReachableParallel(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{p4test.Router, true},
		{p4test.Reflector, false},
	} {
		prog := mustCompile(t, tc.src)
		for _, workers := range []int{1, 8} {
			got, err := RejectReachable(prog, Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("RejectReachable workers=%d = %v, want %v", workers, got, tc.want)
			}
		}
	}
}

// TestPathBudgetDeterministicAcrossWorkers: a binding MaxPaths budget
// must fail at every worker count (never silently return a
// scheduler-dependent subset), and must bound exploration work even
// when SolvePaths prunes most paths (pruned completions are charged
// against the budget too).
func TestPathBudgetDeterministicAcrossWorkers(t *testing.T) {
	prog := mustCompile(t, synthProgram(42, 5)) // 128 completions, many infeasible
	for _, workers := range []int{1, 2, 8} {
		for _, solve := range []bool{false, true} {
			for round := 0; round < 3; round++ {
				_, _, err := Explore(prog, Options{MaxPaths: 20, Workers: workers, SolvePaths: solve})
				if err == nil {
					t.Fatalf("workers=%d solve=%v round=%d: binding budget must error", workers, solve, round)
				}
			}
			// And a budget that does not bind never errors.
			paths, _, err := Explore(prog, Options{MaxPaths: 200, Workers: workers, SolvePaths: solve})
			if err != nil {
				t.Fatalf("workers=%d solve=%v: non-binding budget errored: %v", workers, solve, err)
			}
			if len(paths) == 0 {
				t.Fatal("no paths")
			}
		}
	}
}

// TestDifferentialSolversOnPathFormulas harvests real path conditions
// from the shipped flows and cross-checks the CDCL solver against the
// reference DPLL on each — the path-derived half of the solver's
// differential-fuzz contract (the random half lives in package solver).
func TestDifferentialSolversOnPathFormulas(t *testing.T) {
	sources := []string{p4test.Router, p4test.L2Switch, p4test.Firewall, p4test.Reflector}
	for _, src := range sources {
		prog := mustCompile(t, src)
		paths, _, err := Explore(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			_, stC := solver.Solve(p.Constraints)
			_, stR := solver.SolveReference(p.Constraints)
			if stC != stR {
				t.Fatalf("path %v: CDCL=%v reference=%v", p.ParserPath, stC, stR)
			}
			// And with a violating postcondition appended, as Check does.
			for _, inst := range p.Fields {
				if len(inst) == 0 {
					continue
				}
				f := inst[len(inst)-1]
				cons := append(append([]solver.BV(nil), p.Constraints...),
					solver.Eq(f, solver.ConstUint(0, f.Width())))
				_, stC = solver.Solve(cons)
				_, stR = solver.SolveReference(cons)
				if stC != stR {
					t.Fatalf("path %v + postcond: CDCL=%v reference=%v", p.ParserPath, stC, stR)
				}
				break
			}
		}
	}
}

// TestSolvePathsPrunesInfeasible: feasibility filtering must drop
// exactly the paths a per-path solve refutes.
func TestSolvePathsPrunesInfeasible(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	all, _, err := Explore(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	for _, p := range all {
		if _, st := solver.Solve(p.Constraints); st == solver.Sat {
			feasible++
		}
	}
	exp, err := ExploreWithStats(prog, Options{SolvePaths: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Paths) != feasible {
		t.Fatalf("SolvePaths kept %d paths, want %d feasible", len(exp.Paths), feasible)
	}
	if exp.Pruned != len(all)-feasible {
		t.Fatalf("pruned = %d, want %d", exp.Pruned, len(all)-feasible)
	}
	for _, p := range exp.Paths {
		if p.Model == nil {
			t.Fatalf("feasible path %d has no model", p.ID)
		}
		for _, c := range p.Constraints {
			v, err := solver.Eval(c, p.Model)
			if err != nil {
				t.Fatal(err)
			}
			if v.IsZero() {
				t.Fatalf("path %d model does not satisfy %s", p.ID, c)
			}
		}
	}
}

// BenchmarkExploreParallel measures feasibility-solved exploration of a
// many-path synthetic program across worker counts. cmd/benchgate
// asserts the 8-worker run is >= 3x the 1-worker run when the machine
// has >= 8 CPUs (the assertion self-disables below that).
func BenchmarkExploreParallel(b *testing.B) {
	prog := mustCompile(b, synthProgram(42, 5))
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := Options{Workers: workers, SolvePaths: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exp, err := ExploreWithStats(prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(exp.Paths) == 0 {
					b.Fatal("no feasible paths")
				}
			}
		})
	}
}
