package verify

import (
	"math/rand"
	"testing"

	"netdebug/internal/bitfield"
	"netdebug/internal/dataplane"
	"netdebug/internal/p4/compile"
	"netdebug/internal/p4/ir"
	"netdebug/internal/p4/p4test"
	"netdebug/internal/packet"
	"netdebug/internal/target"
	"netdebug/internal/verify/solver"
)

func mustCompile(t testing.TB, src string) *ir.Program {
	t.Helper()
	prog, err := compile.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestExploreRouterPaths(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	paths, truncated, err := Explore(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated != 0 {
		t.Fatalf("truncated = %d", truncated)
	}
	// Router paths: non-IPv4 accept (1: then ipv4 invalid -> drop),
	// IPv4 reject (1), IPv4 ttl==0 drop (1), table actions (forward,
	// drop, NoAction, default-drop) (4). Expect a handful; must include
	// at least one reject and several accepts.
	var rejects, accepts int
	for _, p := range paths {
		switch p.Verdict {
		case "reject":
			rejects++
		case "accept":
			accepts++
		}
	}
	if rejects == 0 || accepts < 4 {
		t.Fatalf("paths: %d rejects, %d accepts (total %d)", rejects, accepts, len(paths))
	}
}

// TestRejectedDroppedVerifiesOnProgram is the paper's point: software
// formal verification proves the program handles reject correctly...
func TestRejectedDroppedVerifiesOnProgram(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	res, err := Check(prog, PropRejectedDropped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("property must hold on the program: %s", res)
	}
}

// ...and TestRejectedDroppedViolatedOnSDNetCompilation shows the same
// property is violated by the IR the buggy compiler actually produced:
// verification of the software specification is blind to the deployed
// behaviour unless it is given the target's real semantics.
func TestRejectedDroppedViolatedOnSDNetCompilation(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	sd := target.NewSDNet(target.DefaultErrata())
	if err := sd.Load(prog); err != nil {
		t.Fatal(err)
	}
	compiled := sd.Program() // reject rewritten to accept
	// The property trivially holds (reject is unreachable)...
	res, err := Check(compiled, PropRejectedDropped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("unexpected: %s", res)
	}
	// ...but malformed-IPv4 forwarding is now provable:
	res, err = Check(compiled, PropMalformedIPv4Dropped("ipv4"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("malformed-ipv4-dropped should be violated on the sdnet-compiled IR")
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample model")
	}
	// And on the original program the same property holds.
	res, err = Check(prog, PropMalformedIPv4Dropped("ipv4"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("program-level check should verify: %s", res)
	}
}

func TestForwardedHasEgress(t *testing.T) {
	// Router assigns egress in ipv4_forward only; the NoAction table path
	// forwards without assigning egress -> property violated (a real
	// program smell our checker catches).
	prog := mustCompile(t, p4test.Router)
	res, err := Check(prog, PropForwardedHasEgress, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("NoAction path should violate forwarded-implies-egress-assigned")
	}
	// The reflector always assigns egress.
	refl := mustCompile(t, p4test.Reflector)
	res, err = Check(refl, PropForwardedHasEgress, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("reflector: %s", res)
	}
}

func TestTTLNonZeroProperty(t *testing.T) {
	// Router guards ttl==0 before decrementing, but forwards ttl==1
	// packets as ttl==0 — the property is violated with a counterexample
	// that must have ttl==1 on input.
	prog := mustCompile(t, p4test.Router)
	res, err := Check(prog, PropFieldNonZeroOnForward("ipv4", "ttl"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("ttl=1 input should violate the nonzero-ttl postcondition")
	}
	found := false
	for name, v := range res.Counterexample {
		if len(name) > 8 && name[:8] == "ipv4.ttl" && v.Uint64() == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("counterexample should bind ipv4.ttl=1: %v", res.Counterexample)
	}
}

func TestRejectReachable(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	ok, err := RejectReachable(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("router parser reject should be reachable")
	}
	refl := mustCompile(t, p4test.Reflector)
	ok, err = RejectReachable(refl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("reflector has no reject transitions")
	}
	// On the sdnet-compiled router, reject is unreachable — exactly the
	// compiled-away behaviour.
	sd := target.NewSDNet(target.DefaultErrata())
	if err := sd.Load(prog); err != nil {
		t.Fatal(err)
	}
	ok, err = RejectReachable(sd.Program(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("sdnet compilation should make reject unreachable")
	}
}

func TestInfeasibleViolationsArePruned(t *testing.T) {
	// A program where the "dangerous" branch is statically unreachable:
	// the parser only accepts version==4, and the control would only
	// misbehave for version!=4.
	src := `
	header ipv4ish_t { bit<8> version; bit<8> x; }
	struct hs { ipv4ish_t h; }
	parser P(packet_in p, out hs hdr, inout standard_metadata_t sm) {
	  state start {
	    p.extract(hdr.h);
	    transition select(hdr.h.version) {
	      8w4: accept;
	      default: reject;
	    }
	  }
	}
	control I(inout hs hdr, inout standard_metadata_t sm) {
	  apply {
	    sm.egress_spec = 9w1;
	    if (hdr.h.version != 8w4) {
	      sm.egress_spec = 9w0;  // unreachable
	    }
	  }
	}
	control D(packet_out p, in hs hdr) { apply { p.emit(hdr.h); } }
	S(P(), I(), D()) main;`
	prog := mustCompile(t, src)
	prop := Property{
		Name: "egress-never-zeroed",
		Violation: func(pr *ir.Program, p *Path) (bool, []solver.BV) {
			if p.Dropped {
				return false, nil
			}
			inst := pr.Instances[pr.StdMeta]
			_ = inst
			egress := p.Fields[pr.StdMeta][ir.StdMetaEgressSpec]
			return true, []solver.BV{solver.Eq(egress, solver.ConstUint(0, 9))}
		},
	}
	res, err := Check(prog, prop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("infeasible branch should be pruned by the solver: %s", res)
	}
}

// TestSymbolicAgreesWithConcrete cross-validates the symbolic executor
// against the concrete dataplane engine: for random packets, the concrete
// outcome (forward/drop) must match some feasible symbolic path whose
// constraints the packet satisfies.
func TestSymbolicAgreesWithConcrete(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	paths, _, err := Explore(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := dataplane.New(prog)
	ctx := eng.NewContext()
	rng := rand.New(rand.NewSource(17))
	macA := packet.MAC{2, 0, 0, 0, 0, 1}
	macB := packet.MAC{2, 0, 0, 0, 0, 2}

	for i := 0; i < 200; i++ {
		frame := packet.BuildUDPv4(macA, macB,
			packet.IPv4AddrFrom(rng.Uint32()), packet.IPv4AddrFrom(rng.Uint32()),
			uint16(rng.Intn(65536)), 53, nil)
		if rng.Intn(3) == 0 {
			frame[14] = byte(rng.Intn(256)) // randomize version/ihl
		}
		if rng.Intn(3) == 0 {
			frame[14+8] = 0 // ttl = 0
		}
		out, _ := eng.Process(ctx, frame, 0)
		dropped := out == nil

		// Table is empty, so concrete execution always takes the
		// default action path; find a symbolic path consistent with the
		// packet under default-action-only table behaviour.
		model := modelFromFrame(frame)
		matched := false
		for _, p := range paths {
			if !tableDefaultOnly(p) {
				continue
			}
			if pathAccepts(t, p, model) {
				if p.Dropped != dropped {
					t.Fatalf("pkt %d: concrete dropped=%v, symbolic path %v dropped=%v",
						i, dropped, p.ParserPath, p.Dropped)
				}
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("pkt %d: no symbolic path matches frame %x", i, frame[:20])
		}
	}
}

// modelFromFrame binds the symbolic extract variables for the Router
// program's eth/ipv4 layout to the frame's concrete bytes. Variable names
// are "<inst>.<field>#<n>"; the Router extracts each header once, so the
// first binding per field name wins.
func modelFromFrame(frame []byte) map[string]uint64 {
	m := map[string]uint64{}
	get := func(off, w int) uint64 {
		var v uint64
		for i := 0; i < w; i++ {
			bit := off + i
			v = v<<1 | uint64(frame[bit/8]>>(7-bit%8)&1)
		}
		return v
	}
	m["ethernet.dstAddr"] = get(0, 48)
	m["ethernet.srcAddr"] = get(48, 48)
	m["ethernet.etherType"] = get(96, 16)
	if len(frame) >= 34 {
		m["ipv4.version"] = get(112, 4)
		m["ipv4.ihl"] = get(116, 4)
		m["ipv4.diffserv"] = get(120, 8)
		m["ipv4.totalLen"] = get(128, 16)
		m["ipv4.identification"] = get(144, 16)
		m["ipv4.flags"] = get(160, 3)
		m["ipv4.fragOffset"] = get(163, 13)
		m["ipv4.ttl"] = get(176, 8)
		m["ipv4.protocol"] = get(184, 8)
		m["ipv4.hdrChecksum"] = get(192, 16)
		m["ipv4.srcAddr"] = get(208, 32)
		m["ipv4.dstAddr"] = get(240, 32)
	}
	return m
}

// tableDefaultOnly reports whether every table action on the path was the
// default action.
func tableDefaultOnly(p *Path) bool {
	for _, a := range p.Actions {
		if len(a) < 9 || a[len(a)-9:] != "(default)" {
			return false
		}
	}
	return true
}

// pathAccepts evaluates the path constraints under the frame-derived
// model (fresh variables are matched by name prefix).
func pathAccepts(t *testing.T, p *Path, frameVals map[string]uint64) bool {
	model := solver.Model{}
	bind := func(v solver.VarBV) {
		for name, val := range frameVals {
			if len(v.Name) > len(name) && v.Name[:len(name)] == name && v.Name[len(name)] == '#' {
				model[v.Name] = bvOf(val, v.W)
				return
			}
		}
	}
	for _, c := range p.Constraints {
		walkVars(c, bind)
	}
	for _, c := range p.Constraints {
		v, err := solver.Eval(c, model)
		if err != nil {
			t.Fatal(err)
		}
		if v.IsZero() {
			return false
		}
	}
	return true
}

func walkVars(t solver.BV, f func(solver.VarBV)) {
	switch t := t.(type) {
	case solver.VarBV:
		f(t)
	case solver.BinBV:
		walkVars(t.A, f)
		walkVars(t.B, f)
	case solver.UnBV:
		walkVars(t.X, f)
	case solver.IteBV:
		walkVars(t.Cond, f)
		walkVars(t.A, f)
		walkVars(t.B, f)
	}
}

func bvOf(v uint64, w int) bitfield.Value { return bitfield.New(v, w) }

func TestResultStrings(t *testing.T) {
	prog := mustCompile(t, p4test.Router)
	res, err := Check(prog, PropRejectedDropped, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); len(s) == 0 || s[:8] != "VERIFIED" {
		t.Fatalf("verdict string: %q", s)
	}
	res2, err := Check(prog, PropFieldNonZeroOnForward("ipv4", "ttl"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := res2.String(); len(s) == 0 || s[:8] != "VIOLATED" {
		t.Fatalf("verdict string: %q", s)
	}
}

func TestPathBudget(t *testing.T) {
	prog := mustCompile(t, p4test.Firewall)
	_, _, err := Explore(prog, Options{MaxPaths: 1})
	if err == nil {
		t.Fatal("tiny path budget should error")
	}
}

func BenchmarkExploreRouter(b *testing.B) {
	prog := mustCompile(b, p4test.Router)
	for i := 0; i < b.N; i++ {
		if _, _, err := Explore(prog, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckRejectedDropped(b *testing.B) {
	prog := mustCompile(b, p4test.Router)
	for i := 0; i < b.N; i++ {
		if _, err := Check(prog, PropRejectedDropped, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
