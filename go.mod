module netdebug

go 1.24
