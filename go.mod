module netdebug

go 1.23
